package amr

import (
	"math/rand"
	"testing"

	"samrdlb/internal/geom"
	"samrdlb/internal/mpx"
)

// buildDataHierarchy makes a two-level hierarchy with random data,
// grids spread over the given number of owners.
func buildDataHierarchy(t *testing.T, owners int) *Hierarchy {
	t.Helper()
	h := New(geom.UnitCube(16), 2, 1, 1, true, "q", "rho")
	rng := rand.New(rand.NewSource(99))
	boxes := geom.BoxList{h.Domain}.SplitEvenly(8)
	boxes.SortByLo()
	for i, b := range boxes {
		g := h.AddGrid(0, b, i%owners, NoGrid)
		for _, f := range h.Fields {
			g.Patch.FillFunc(f, func(geom.Index) float64 { return rng.Float64() })
		}
	}
	// Fine grids covering a central region, split over two parents.
	for _, p := range h.Grids(0) {
		child := p.Box.Intersect(geom.BoxFromShape(geom.Index{4, 4, 4}, geom.Index{8, 8, 8}))
		if child.Empty() {
			continue
		}
		c := h.AddGrid(1, child.Refine(2), (p.Owner+1)%owners, p.ID)
		for _, f := range h.Fields {
			c.Patch.FillFunc(f, func(geom.Index) float64 { return rng.Float64() })
		}
	}
	if err := h.CheckProperNesting(); err != nil {
		t.Fatalf("bad fixture: %v", err)
	}
	return h
}

// cloneHierarchy deep-copies grids and data preserving IDs and owners.
func cloneHierarchy(h *Hierarchy) *Hierarchy {
	out := New(h.Domain, h.RefFactor, h.MaxLevel, h.NGhost, true, h.Fields...)
	idMap := map[GridID]GridID{NoGrid: NoGrid}
	for l := 0; l <= h.MaxLevel; l++ {
		for _, g := range h.Grids(l) {
			ng := out.AddGrid(l, g.Box, g.Owner, idMap[g.Parent])
			idMap[g.ID] = ng.ID
			for _, f := range h.Fields {
				copy(ng.Patch.Field(f), g.Patch.Field(f))
			}
		}
	}
	return out
}

func assertSameData(t *testing.T, a, b *Hierarchy, context string) {
	t.Helper()
	for l := 0; l <= a.MaxLevel; l++ {
		ga, gb := a.Grids(l), b.Grids(l)
		if len(ga) != len(gb) {
			t.Fatalf("%s: level %d grid counts differ", context, l)
		}
		for i := range ga {
			for _, f := range a.Fields {
				fa, fb := ga[i].Patch.Field(f), gb[i].Patch.Field(f)
				for k := range fa {
					if fa[k] != fb[k] {
						t.Fatalf("%s: level %d grid %d field %s differs at %d: %v vs %v",
							context, l, i, f, k, fa[k], fb[k])
					}
				}
			}
		}
	}
}

func TestFillGhostsMPXMatchesSequential(t *testing.T) {
	for _, owners := range []int{1, 2, 4} {
		seq := buildDataHierarchy(t, owners)
		par := cloneHierarchy(seq)
		for l := 0; l <= 1; l++ {
			seq.FillGhostsData(l)
		}
		w := mpx.NewWorld(owners)
		w.Run(func(r *mpx.Rank) {
			for l := 0; l <= 1; l++ {
				par.FillGhostsMPX(r, l)
			}
		})
		assertSameData(t, seq, par, "ghosts")
	}
}

func TestRestrictMPXMatchesSequential(t *testing.T) {
	for _, owners := range []int{1, 3} {
		seq := buildDataHierarchy(t, owners)
		par := cloneHierarchy(seq)
		seq.RestrictData(1)
		w := mpx.NewWorld(owners)
		w.Run(func(r *mpx.Rank) {
			par.RestrictMPX(r, 1)
		})
		assertSameData(t, seq, par, "restrict")
	}
}

func TestMPXDeterministicAcrossRuns(t *testing.T) {
	a := buildDataHierarchy(t, 4)
	b := cloneHierarchy(a)
	run := func(h *Hierarchy) {
		w := mpx.NewWorld(4)
		w.Run(func(r *mpx.Rank) {
			h.FillGhostsMPX(r, 0)
			h.FillGhostsMPX(r, 1)
			h.RestrictMPX(r, 1)
		})
	}
	run(a)
	run(b)
	assertSameData(t, a, b, "determinism")
}

func TestMPXPlanOnlyIsNoop(t *testing.T) {
	h := New(geom.UnitCube(8), 2, 1, 1, false, "q")
	h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	w := mpx.NewWorld(2)
	w.Run(func(r *mpx.Rank) {
		h.FillGhostsMPX(r, 0) // must not panic on nil patches
		h.RestrictMPX(r, 1)
	})
}
