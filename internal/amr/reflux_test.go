package amr

import (
	"math"
	"testing"

	"samrdlb/internal/geom"
	"samrdlb/internal/solver"
)

// refluxFixture: 8³ coarse domain fully covered by one coarse grid,
// with a fine level over the centre [2..5]³ (coarse index space).
func refluxFixture(t *testing.T) (*Hierarchy, *Grid, *Grid) {
	t.Helper()
	h := New(geom.UnitCube(8), 2, 1, 2, true, solver.FieldQ)
	cg := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	fg := h.AddGrid(1, geom.BoxFromShape(geom.Index{4, 4, 4}, geom.Index{8, 8, 8}), 0, cg.ID)
	return h, cg, fg
}

func TestFluxRegisterFaceIdentification(t *testing.T) {
	h, _, _ := refluxFixture(t)
	fr := NewFluxRegister(h, 1)
	// The covered coarse region is a 4³ cube: 6 sides × 16 faces.
	if fr.NumFaces() != 96 {
		t.Errorf("NumFaces = %d, want 96", fr.NumFaces())
	}
	for key, e := range fr.faces {
		// Corrected cells are never covered by the fine level.
		cov := geom.BoxFromShape(geom.Index{2, 2, 2}, geom.Index{4, 4, 4})
		if cov.Contains(e.Cell) {
			t.Fatalf("correction cell %v is covered", e.Cell)
		}
		// The face must be adjacent to its cell.
		lo := key.I
		lo[key.D]--
		if e.Cell != key.I && e.Cell != lo {
			t.Fatalf("face %v corrects non-adjacent cell %v", key, e.Cell)
		}
	}
}

func TestFluxRegisterSkipsDomainBoundary(t *testing.T) {
	// Fine level touching the domain boundary: no correction cells
	// outside the domain.
	h := New(geom.UnitCube(8), 2, 1, 2, true, solver.FieldQ)
	cg := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	h.AddGrid(1, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{8, 8, 8}), 0, cg.ID)
	fr := NewFluxRegister(h, 1)
	// Covered 4³ cube at the corner: 3 interior sides have faces, the
	// 3 domain-boundary sides do not: 3 × 16 = 48.
	if fr.NumFaces() != 48 {
		t.Errorf("NumFaces = %d, want 48", fr.NumFaces())
	}
}

func TestStepFluxesMatchesStep(t *testing.T) {
	// Advancing via StepFluxes must equal the plain Step.
	k := solver.Advection3D{Vel: [3]float64{0.4, -0.3, 0.2}}
	mk := func() *Hierarchy {
		h, _, _ := refluxFixture(t)
		for _, g := range h.Grids(0) {
			g.Patch.FillFunc(solver.FieldQ, func(i geom.Index) float64 {
				return math.Sin(float64(i[0])) * math.Cos(float64(i[1]+i[2]))
			})
		}
		h.FillGhostsData(0)
		return h
	}
	h1, h2 := mk(), mk()
	k.Step(h1.Grids(0)[0].Patch, 0.05, 0.125)
	k.StepFluxes(h2.Grids(0)[0].Patch, 0.05, 0.125)
	a := h1.Grids(0)[0].Patch.Field(solver.FieldQ)
	b := h2.Grids(0)[0].Patch.Field(solver.FieldQ)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-14 {
			t.Fatalf("StepFluxes diverges from Step at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// advanceRefluxed performs one coarse step with subcycled fine steps,
// restriction, and optional refluxing; returns the coarse-grid mass.
func advanceRefluxed(t *testing.T, reflux bool) (before, after float64) {
	t.Helper()
	h, cg, fg := refluxFixture(t)
	k := solver.Advection3D{Vel: [3]float64{0.5, 0.25, 0.125}}
	// A blob inside the fine region abutting its high-x interface and
	// zero elsewhere: the domain boundary carries no flux (upwind of
	// zero is zero), so any mass change is a coarse–fine interface
	// error. The fine data carries a mass-neutral checkerboard so the
	// fine interface fluxes genuinely differ from the coarse one.
	blob := func(c geom.Index) float64 {
		if c[0] == 5 && c[1] >= 3 && c[1] <= 4 && c[2] >= 3 && c[2] <= 4 {
			return 1
		}
		return 0
	}
	cg.Patch.FillFunc(solver.FieldQ, blob)
	fg.Patch.FillFunc(solver.FieldQ, func(i geom.Index) float64 {
		v := blob(i.FloorDiv(2))
		if v == 0 {
			return 0
		}
		// An x-gradient within each coarse cell (mass-neutral): the
		// fine interface flux then differs from the coarse one.
		if i[0]%2 == 0 {
			return v * 0.5
		}
		return v * 1.5
	})
	// Align the coarse data with the fine average before measuring.
	h.RestrictData(1)
	dx0 := 1.0 / 8
	dt0 := solver.MaxStableDt(k.MaxSpeed(), dx0, 0.4)
	before = cg.Patch.Sum(solver.FieldQ)

	var fr *FluxRegister
	if reflux {
		fr = NewFluxRegister(h, 1)
	}
	// Coarse step.
	h.FillGhostsData(0)
	cfl := k.StepFluxes(cg.Patch, dt0, dx0)
	if fr != nil {
		fr.AddCoarse(cg, cfl)
	}
	// Two fine substeps.
	for s := 0; s < 2; s++ {
		h.FillGhostsData(1)
		ffl := k.StepFluxes(fg.Patch, dt0/2, dx0/2)
		if fr != nil {
			fr.AddFine(fg, ffl)
		}
	}
	h.RestrictData(1)
	if fr != nil {
		fr.Apply()
	}
	after = cg.Patch.Sum(solver.FieldQ)
	return before, after
}

func TestRefluxRestoresConservation(t *testing.T) {
	b0, a0 := advanceRefluxed(t, false)
	lossNo := math.Abs(a0 - b0)
	b1, a1 := advanceRefluxed(t, true)
	lossYes := math.Abs(a1 - b1)
	if lossYes > 1e-12*math.Abs(b1) {
		t.Errorf("refluxed step not conservative: %v -> %v (loss %v)", b1, a1, lossYes)
	}
	if lossNo <= lossYes {
		t.Errorf("without refluxing the loss (%v) should exceed the refluxed loss (%v)", lossNo, lossYes)
	}
}
