package amr

import (
	"fmt"

	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
	"samrdlb/internal/mpx"
)

// Tag-space layout of the exchange phases. mpx reserves negative tags
// for its collectives (Send/Recv reject them), so the phases carve up
// the non-negative space: prolongation tags count up from
// TagProlongBase and sibling-copy tags from TagSiblingBase within one
// FillGhostsMPX call, where both phases share the wire and must stay
// disjoint. Restriction runs as its own engine phase — the shard
// worlds join in between — so it reuses TagProlongBase safely.
const (
	TagProlongBase = 0
	TagSiblingBase = 1 << 20
)

// FillGhostsMPX performs exactly FillGhostsData's data motion, but
// through a message-passing world: every inter-grid transfer whose
// source and destination grids live on different ranks becomes a
// tagged message between the owning ranks. Each rank reads and writes
// only the patches its processor owns (plus serialized message
// buffers), so the exchange is genuinely parallel. Grid owners are
// interpreted as rank IDs.
//
// All ranks traverse the same deterministic transfer plan — the
// cached data-motion plan, built lazily under the hierarchy's plan
// mutex and shared by every rank; the plan position is the message
// tag. Every send is posted before any receive within a phase, so
// the pattern cannot deadlock.
func (h *Hierarchy) FillGhostsMPX(r *mpx.Rank, level int) {
	if !h.WithData {
		return
	}
	me := r.ID()
	plan := h.fillPlan(level)

	// Phase A: prolongation of ghost cells from the coarse level.
	if level > 0 {
		type prolongXfer struct {
			g, c           *Grid
			region, coarse geom.Box
			tag            int
		}
		var xfers []prolongXfer
		tag := TagProlongBase
		for i := range plan {
			d := &plan[i]
			for _, op := range d.ops {
				if !op.prolong {
					continue
				}
				xfers = append(xfers, prolongXfer{
					g: d.g, c: op.src,
					region: op.region,
					coarse: op.region.Coarsen(h.RefFactor),
					tag:    tag,
				})
				tag++
			}
		}
		if tag > TagSiblingBase {
			panic(fmt.Sprintf("amr: %d prolongation transfers overflow the phase-A tag space", tag))
		}
		for _, x := range xfers { // sends (and same-rank work) first
			switch {
			case x.c.Owner == me && x.g.Owner == me:
				for _, f := range h.Fields {
					grid.Prolong(x.g.Patch, x.c.Patch, f, h.RefFactor, x.region)
				}
			case x.c.Owner == me:
				r.Send(x.g.Owner, x.tag, grid.PackRegion(x.c.Patch, x.coarse, h.Fields))
			}
		}
		for _, x := range xfers { // then receives
			if x.g.Owner != me || x.c.Owner == me {
				continue
			}
			data := r.Recv(x.c.Owner, x.tag)
			tmp := grid.NewPatch(x.coarse, level-1, 0, h.Fields...)
			grid.UnpackRegion(tmp, x.coarse, h.Fields, data)
			for _, f := range h.Fields {
				grid.Prolong(x.g.Patch, tmp, f, h.RefFactor, x.region)
			}
		}
		r.Barrier()
	}

	// Phase B: sibling overlap copies.
	type siblingXfer struct {
		dst, src *Grid
		region   geom.Box
		tag      int
	}
	var xfers []siblingXfer
	tag := TagSiblingBase // disjoint from phase-A tags
	for i := range plan {
		d := &plan[i]
		for _, op := range d.ops {
			if op.prolong {
				continue
			}
			xfers = append(xfers, siblingXfer{dst: d.g, src: op.src, region: op.region, tag: tag})
			tag++
		}
	}
	for _, x := range xfers {
		switch {
		case x.src.Owner == me && x.dst.Owner == me:
			for _, f := range h.Fields {
				grid.CopyRegion(x.dst.Patch, x.src.Patch, f, x.region)
			}
		case x.src.Owner == me:
			r.Send(x.dst.Owner, x.tag, grid.PackRegion(x.src.Patch, x.region, h.Fields))
		}
	}
	for _, x := range xfers {
		if x.dst.Owner != me || x.src.Owner == me {
			continue
		}
		grid.UnpackRegion(x.dst.Patch, x.region, h.Fields, r.Recv(x.src.Owner, x.tag))
	}
	r.Barrier()

	// Phase C: physical-boundary clamp, purely local to each owner,
	// row-wise over the plan's precomputed outside-domain boxes.
	for i := range plan {
		d := &plan[i]
		if d.g.Owner != me {
			continue
		}
		for _, cb := range d.clamps {
			for _, f := range h.Fields {
				grid.ClampRegion(d.g.Patch, f, cb, d.g.Box)
			}
		}
	}
	r.Barrier()
}

// RestrictMPX performs RestrictData's motion through the world: each
// fine grid's owner restricts into a temporary coarse patch and ships
// it to the parent's owner. The transfer list derives from the cached
// restriction plan; tags follow plan order on every rank.
func (h *Hierarchy) RestrictMPX(r *mpx.Rank, level int) {
	if !h.WithData || level <= 0 {
		return
	}
	me := r.ID()
	plan := h.restrictDataPlan(level)
	type xfer struct {
		g, p   *Grid
		coarse geom.Box
		tag    int
	}
	var xfers []xfer
	tag := TagProlongBase
	for i := range plan {
		d := &plan[i]
		for _, g := range d.fines {
			xfers = append(xfers, xfer{g: g, p: d.parent, coarse: g.Box.Coarsen(h.RefFactor), tag: tag})
			tag++
		}
	}
	for _, x := range xfers {
		switch {
		case x.g.Owner == me && x.p.Owner == me:
			for _, f := range h.Fields {
				grid.Restrict(x.p.Patch, x.g.Patch, f, h.RefFactor)
			}
		case x.g.Owner == me:
			tmp := grid.NewPatch(x.coarse, level-1, 0, h.Fields...)
			for _, f := range h.Fields {
				grid.Restrict(tmp, x.g.Patch, f, h.RefFactor)
			}
			r.Send(x.p.Owner, x.tag, grid.PackRegion(tmp, x.coarse, h.Fields))
		}
	}
	for _, x := range xfers {
		if x.p.Owner != me || x.g.Owner == me {
			continue
		}
		// Restrict writes only the parent's interior, as RestrictData
		// does via grid.Restrict's overlap computation.
		region := x.coarse.Intersect(x.p.Box)
		tmp := grid.NewPatch(x.coarse, level-1, 0, h.Fields...)
		grid.UnpackRegion(tmp, x.coarse, h.Fields, r.Recv(x.g.Owner, x.tag))
		for _, f := range h.Fields {
			grid.CopyRegion(x.p.Patch, tmp, f, region)
		}
	}
	r.Barrier()
}
