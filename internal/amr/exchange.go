package amr

import (
	"sync"

	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

// MsgKind classifies an inter-grid transfer.
type MsgKind int

// Transfer kinds: sibling ghost exchange at one level, prolongation
// from a parent into child ghost cells, and restriction of a child
// solution onto its parent.
const (
	SiblingGhost MsgKind = iota
	ParentProlong
	ChildRestrict
)

func (k MsgKind) String() string {
	switch k {
	case SiblingGhost:
		return "sibling-ghost"
	case ParentProlong:
		return "parent-prolong"
	case ChildRestrict:
		return "child-restrict"
	default:
		return "unknown"
	}
}

// Message is one inter-grid transfer of the exchange plan. Src and
// Dst identify grids; the engine maps them to processors and links.
type Message struct {
	Src, Dst GridID
	Bytes    int64
	Kind     MsgKind
}

// planCache is a level's stable plan-cache entry — the cost-model
// message lists and the concrete data-motion plans. Ownership changes
// do not invalidate it: the plans are keyed by grid identity and
// boxes; the engine (and the mpx execution) resolves owners when it
// charges or routes the messages. Each part is built lazily on first
// use and patched in place when structural mutations dirty the level
// (see plandirty.go); the entry itself is never replaced.
type planCache struct {
	msgBuilt bool
	// ghost is the flattened ghost plan; ghostOff[i]:ghostOff[i+1] is
	// the message segment of the i-th destination (level-list order),
	// whose ID is ghostIDs[i] — the unit of reuse when patching.
	ghost    []Message
	ghostOff []int32
	ghostIDs []GridID
	restrict []Message

	fillBuilt bool
	fill      []fillDest
	// restrictData is the grouped-by-parent restriction plan.
	restrictBuilt bool
	restrictData  []restrictDest

	// Dirty state, maintained by the mutation hooks: dirtyAll forces a
	// full rebuild; otherwise only destinations whose box touches a
	// dirty region are re-planned.
	dirtyAll bool
	dirty    geom.BoxList
}

// planScratch holds the per-destination working storage of the plan
// builders — candidate lists and box decompositions — pooled so plan
// rebuilds stop allocating per grid.
type planScratch struct {
	cand           []*Grid
	ghost, covered geom.BoxList
	rem, tmp       geom.BoxList
}

var planScratchPool = sync.Pool{New: func() any { return new(planScratch) }}

func getPlanScratch() *planScratch  { return planScratchPool.Get().(*planScratch) }
func putPlanScratch(s *planScratch) { planScratchPool.Put(s) }

// GhostPlanCached returns GhostPlan(l, false), memoised and patched
// incrementally as the grid structure changes. Callers must not
// mutate the returned slice.
func (h *Hierarchy) GhostPlanCached(l int) []Message {
	h.planMu.Lock()
	defer h.planMu.Unlock()
	return h.refreshPlans(l, true, false, false).ghost
}

// RestrictPlanCached returns RestrictPlan(l, false), memoised and
// patched alongside the ghost plan under the same critical section, so
// a structural mutation between a GhostPlanCached and a
// RestrictPlanCached call can never surface a stale or missing
// restrict plan.
func (h *Hierarchy) RestrictPlanCached(l int) []Message {
	h.planMu.Lock()
	defer h.planMu.Unlock()
	return h.refreshPlans(l, true, false, false).restrict
}

// GhostPlan returns the transfers required to fill the ghost zones of
// every level-l grid before a step: sibling overlaps at the same
// level, plus prolongation from the coarse level for ghost cells no
// sibling covers. Zero-byte and intra-grid entries are omitted; so
// are transfers where source and destination grids share a processor
// only if dropLocal is true.
//
// Sources are found through the level's spatial index — O(n·k) instead
// of the O(n²) all-pairs scan — in level-list order, so the result is
// byte-identical to GhostPlanScan.
func (h *Hierarchy) GhostPlan(l int, dropLocal bool) []Message {
	h.planMu.Lock()
	defer h.planMu.Unlock()
	li := h.indexFor(l)
	dom := h.DomainAt(l)
	bytesPerCell := int64(len(h.Fields)) * 8
	scr := getPlanScratch()
	var out []Message
	for _, g := range h.Grids(l) {
		out = h.appendGhostDest(out, g, l, li, dom, bytesPerCell, dropLocal, scr)
	}
	putPlanScratch(scr)
	return out
}

// appendGhostDest plans one destination grid's ghost messages,
// mirroring one iteration of the GhostPlanScan outer loop: the index
// supplies the candidate sources in level-list order, so surviving
// messages appear exactly as the scan emits them.
func (h *Hierarchy) appendGhostDest(out []Message, g *Grid, l int, li *levelIndex, dom geom.Box, bytesPerCell int64, dropLocal bool, scr *planScratch) []Message {
	grown := g.Box.Grow(h.NGhost).Intersect(dom)
	scr.ghost = geom.SubtractAppend(scr.ghost[:0], grown, g.Box)
	covered := scr.covered[:0]
	scr.cand = li.query(grown, scr.cand[:0])
	for _, s := range scr.cand {
		if s.ID == g.ID || !s.Box.Intersects(grown) {
			continue
		}
		for _, gb := range scr.ghost {
			ov := gb.Intersect(s.Box)
			if ov.Empty() {
				continue
			}
			covered = append(covered, ov)
			if dropLocal && s.Owner == g.Owner {
				continue
			}
			out = append(out, Message{
				Src: s.ID, Dst: g.ID,
				Bytes: ov.NumCells() * bytesPerCell,
				Kind:  SiblingGhost,
			})
		}
	}
	scr.covered = covered
	if l == 0 {
		return out
	}
	// Ghost cells not covered by siblings come from the coarse level
	// (prolongation); attribute them to the parent grid.
	var remaining int64
	for _, gb := range scr.ghost {
		remaining += subtractListCells(gb, covered, scr)
	}
	if remaining > 0 {
		p := h.Grid(g.Parent)
		if p != nil && (!dropLocal || p.Owner != g.Owner) {
			// Coarse data for r^3 fine ghost cells is one coarse
			// cell; the transfer moves the coarse footprint.
			r3 := int64(h.RefFactor * h.RefFactor * h.RefFactor)
			coarseCells := (remaining + r3 - 1) / r3
			out = append(out, Message{
				Src: p.ID, Dst: g.ID,
				Bytes: coarseCells * bytesPerCell,
				Kind:  ParentProlong,
			})
		}
	}
	return out
}

// subtractListCells returns the cell count of a \ union(bs), ping-
// ponging between two pooled buffers instead of allocating the
// intermediate decompositions like geom.SubtractList.
func subtractListCells(a geom.Box, bs geom.BoxList, scr *planScratch) int64 {
	cur, alt := append(scr.rem[:0], a), scr.tmp
	for _, b := range bs {
		if len(cur) == 0 {
			break
		}
		alt = alt[:0]
		for _, r := range cur {
			alt = geom.SubtractAppend(alt, r, b)
		}
		cur, alt = alt, cur
	}
	scr.rem, scr.tmp = cur, alt
	var n int64
	for _, r := range cur {
		n += r.NumCells()
	}
	return n
}

// GhostPlanScan is the original O(grids²) all-pairs ghost planner,
// kept as the -plancheck baseline and for benchmarks. It produces
// exactly the same messages as GhostPlan.
func (h *Hierarchy) GhostPlanScan(l int, dropLocal bool) []Message {
	var out []Message
	bytesPerCell := int64(len(h.Fields)) * 8
	dom := h.DomainAt(l)
	grids := h.Grids(l)
	for _, g := range grids {
		grown := g.Box.Grow(h.NGhost).Intersect(dom)
		ghost := geom.Subtract(grown, g.Box)
		var covered geom.BoxList
		for _, s := range grids {
			if s.ID == g.ID || !s.Box.Intersects(grown) {
				continue
			}
			for _, gb := range ghost {
				ov := gb.Intersect(s.Box)
				if ov.Empty() {
					continue
				}
				covered = append(covered, ov)
				if dropLocal && s.Owner == g.Owner {
					continue
				}
				out = append(out, Message{
					Src: s.ID, Dst: g.ID,
					Bytes: ov.NumCells() * bytesPerCell,
					Kind:  SiblingGhost,
				})
			}
		}
		if l == 0 {
			continue
		}
		var remaining int64
		for _, gb := range ghost {
			remaining += geom.SubtractList(gb, covered).NumCells()
		}
		if remaining > 0 {
			p := h.Grid(g.Parent)
			if p != nil && (!dropLocal || p.Owner != g.Owner) {
				r3 := int64(h.RefFactor * h.RefFactor * h.RefFactor)
				coarseCells := (remaining + r3 - 1) / r3
				out = append(out, Message{
					Src: p.ID, Dst: g.ID,
					Bytes: coarseCells * bytesPerCell,
					Kind:  ParentProlong,
				})
			}
		}
	}
	return out
}

// RestrictPlan returns the transfers that project every level-l grid
// onto its parent after the level reaches its parent's physical time.
func (h *Hierarchy) RestrictPlan(l int, dropLocal bool) []Message {
	if l <= 0 {
		return nil
	}
	var out []Message
	bytesPerCell := int64(len(h.Fields)) * 8
	r3 := int64(h.RefFactor * h.RefFactor * h.RefFactor)
	for _, g := range h.Grids(l) {
		p := h.Grid(g.Parent)
		if p == nil {
			continue
		}
		if dropLocal && p.Owner == g.Owner {
			continue
		}
		out = append(out, Message{
			Src: g.ID, Dst: p.ID,
			Bytes: g.NumCells() / r3 * bytesPerCell,
			Kind:  ChildRestrict,
		})
	}
	return out
}

// FillGhostsData performs the actual data motion of GhostPlan on the
// patches: copy sibling overlaps, prolong from the coarse level, and
// clamp-extrapolate at the physical domain boundary. It executes the
// cached data-motion plan (built once per hierarchy generation) in
// parallel over the attached pool; with the datacheck oracle enabled
// it additionally re-runs the scan-based baseline and panics on any
// bitwise divergence.
func (h *Hierarchy) FillGhostsData(l int) {
	if !h.WithData {
		return
	}
	plan := h.fillPlan(l)
	if h.dataCheck {
		h.fillGhostsChecked(l, plan)
		return
	}
	h.execFillPlan(plan)
}

// FillGhostsScan is the original O(grids²) scan-based ghost fill,
// kept as the datacheck baseline and for benchmarks. It produces
// exactly the same data as FillGhostsData.
func (h *Hierarchy) FillGhostsScan(l int) {
	if !h.WithData {
		return
	}
	dom := h.DomainAt(l)
	grids := h.Grids(l)
	for _, g := range grids {
		grown := g.Patch.Grown()
		ghost := geom.Subtract(grown, g.Box)
		// 1. Prolongation from every overlapping coarse grid fills a
		// baseline for the ghost cells with coarse coverage (never the
		// interior, which holds the fine solution).
		if l > 0 {
			for _, c := range h.Grids(l - 1) {
				refined := c.Box.Refine(h.RefFactor)
				for _, gb := range ghost {
					region := gb.Intersect(refined)
					if region.Empty() {
						continue
					}
					for _, f := range h.Fields {
						grid.Prolong(g.Patch, c.Patch, f, h.RefFactor, region)
					}
				}
			}
		}
		// 2. Sibling copies overwrite with same-level data.
		for _, s := range grids {
			if s.ID == g.ID {
				continue
			}
			ov := grown.Intersect(s.Box)
			if ov.Empty() {
				continue
			}
			for _, f := range h.Fields {
				grid.CopyRegion(g.Patch, s.Patch, f, ov)
			}
		}
		// 3. Clamp at the physical boundary: ghost cells outside the
		// domain copy the nearest interior cell (outflow condition).
		grown.ForEach(func(i geom.Index) {
			if dom.Contains(i) {
				return
			}
			src := i.Max(dom.Lo).Min(dom.Hi).Max(g.Box.Lo).Min(g.Box.Hi)
			for _, f := range h.Fields {
				g.Patch.Set(f, i, g.Patch.At(f, src))
			}
		})
	}
}

// RestrictData projects every level-l grid's solution onto its parent
// patch (the data motion of RestrictPlan), executing the cached
// restriction plan grouped by parent — in parallel over the attached
// pool — and verifying against the scan baseline when the datacheck
// oracle is on.
func (h *Hierarchy) RestrictData(l int) {
	if !h.WithData || l <= 0 {
		return
	}
	plan := h.restrictDataPlan(l)
	if h.dataCheck {
		h.restrictChecked(l, plan)
		return
	}
	h.execRestrictPlan(plan)
}

// RestrictDataScan is the original per-grid restriction walk, kept as
// the datacheck baseline and for benchmarks.
func (h *Hierarchy) RestrictDataScan(l int) {
	if !h.WithData || l <= 0 {
		return
	}
	for _, g := range h.Grids(l) {
		p := h.Grid(g.Parent)
		if p == nil || p.Patch == nil {
			continue
		}
		for _, f := range h.Fields {
			grid.Restrict(p.Patch, g.Patch, f, h.RefFactor)
		}
	}
}
