package amr

import (
	"fmt"

	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

// Data-motion plan cache. FillGhostsData and RestrictData used to
// rediscover, for every grid on every step, which sibling overlaps to
// copy, which coarse regions to prolong, and which boundary cells to
// clamp — an O(grids²) scan per level step. The hierarchy's structure
// only changes at regrid/migration boundaries (tracked by the gen
// counter the message plans already key on), so the concrete
// operation list is precomputed once per generation and executed
// directly on the patches.
//
// The plan is partitioned by destination grid: every operation writes
// only its destination's patch (sibling copies and prolongations
// write ghost cells, clamps write outside-domain cells), and reads
// only source interiors, which no fill operation writes. Distinct
// destinations therefore never race, and solver.Pool can execute the
// per-destination work lists concurrently with bit-identical results.

// fillOp is one planned transfer into a destination grid's patch.
type fillOp struct {
	src    *Grid
	region geom.Box // destination-level index space
	// prolong: src is one level coarser and the region is injected
	// piecewise-constant; otherwise src is a sibling and the region is
	// copied.
	prolong bool
}

// fillDest is the complete ghost-fill work list for one grid, in the
// exact order the scan-based fill applied it: prolongations (coarse
// grid major, ghost-box minor), then sibling copies, then the
// physical-boundary clamp regions.
type fillDest struct {
	g      *Grid
	ops    []fillOp
	clamps geom.BoxList // grown-box cells outside the physical domain
}

// restrictDest groups the fine grids restricting into one parent, in
// level traversal order, so the parent is written by exactly one
// worker and partially-covered coarse cells keep their last writer.
type restrictDest struct {
	parent *Grid
	fines  []*Grid
}

// fillPlan returns the cached ghost-fill plan for level l, built or
// patched if the hierarchy's structure changed. Safe for concurrent
// callers (mpx ranks build lazily through the same mutex).
func (h *Hierarchy) fillPlan(l int) []fillDest {
	h.planMu.Lock()
	defer h.planMu.Unlock()
	return h.refreshPlans(l, false, true, false).fill
}

// restrictDataPlan returns the cached restriction plan for level l.
func (h *Hierarchy) restrictDataPlan(l int) []restrictDest {
	h.planMu.Lock()
	defer h.planMu.Unlock()
	return h.refreshPlans(l, false, false, true).restrictData
}

// buildFillDest plans one destination grid's ghost-fill work list,
// mirroring one iteration of buildFillPlanScan: prolongation regions
// from every overlapping coarse grid (coarse grid major, ghost box
// minor), sibling overlap copies, then the outside-domain clamp
// boxes. Candidates come from the level indexes in level-list order —
// the coarse query box grown.Coarsen(r) touches exactly the coarse
// grids whose refined box meets grown — so the op order matches the
// scan's.
func (h *Hierarchy) buildFillDest(g *Grid, l int, li, cli *levelIndex, dom geom.Box, scr *planScratch) fillDest {
	grown := g.Box.Grow(h.NGhost)
	d := fillDest{g: g}
	if l > 0 {
		scr.ghost = geom.SubtractAppend(scr.ghost[:0], grown, g.Box)
		scr.cand = cli.query(grown.Coarsen(h.RefFactor), scr.cand[:0])
		for _, c := range scr.cand {
			refined := c.Box.Refine(h.RefFactor)
			for _, gb := range scr.ghost {
				region := gb.Intersect(refined)
				if region.Empty() {
					continue
				}
				d.ops = append(d.ops, fillOp{src: c, region: region, prolong: true})
			}
		}
	}
	scr.cand = li.query(grown, scr.cand[:0])
	for _, s := range scr.cand {
		if s.ID == g.ID {
			continue
		}
		ov := grown.Intersect(s.Box)
		if ov.Empty() {
			continue
		}
		d.ops = append(d.ops, fillOp{src: s, region: ov})
	}
	d.clamps = geom.Subtract(grown, dom)
	return d
}

// buildFillPlanScan is the original O(grids²) fill planner, kept as
// the -plancheck baseline: per destination grid, prolongation regions
// from every overlapping coarse grid, sibling overlap copies, then
// the outside-domain clamp boxes — the exact traversal of the
// scan-based fill, so executing the plan reproduces it bit for bit.
func (h *Hierarchy) buildFillPlanScan(l int) []fillDest {
	dom := h.DomainAt(l)
	grids := h.Grids(l)
	plan := make([]fillDest, 0, len(grids))
	for _, g := range grids {
		grown := g.Box.Grow(h.NGhost)
		d := fillDest{g: g}
		if l > 0 {
			ghost := geom.Subtract(grown, g.Box)
			for _, c := range h.Grids(l - 1) {
				refined := c.Box.Refine(h.RefFactor)
				for _, gb := range ghost {
					region := gb.Intersect(refined)
					if region.Empty() {
						continue
					}
					d.ops = append(d.ops, fillOp{src: c, region: region, prolong: true})
				}
			}
		}
		for _, s := range grids {
			if s.ID == g.ID {
				continue
			}
			ov := grown.Intersect(s.Box)
			if ov.Empty() {
				continue
			}
			d.ops = append(d.ops, fillOp{src: s, region: ov})
		}
		d.clamps = geom.Subtract(grown, dom)
		plan = append(plan, d)
	}
	return plan
}

// buildRestrictDataPlan groups level-l grids by parent, preserving
// the level's traversal order within each group.
func (h *Hierarchy) buildRestrictDataPlan(l int) []restrictDest {
	if l <= 0 {
		return nil
	}
	var plan []restrictDest
	idx := make(map[GridID]int)
	for _, g := range h.Grids(l) {
		p := h.Grid(g.Parent)
		if p == nil || p.Patch == nil {
			continue
		}
		j, ok := idx[p.ID]
		if !ok {
			j = len(plan)
			idx[p.ID] = j
			plan = append(plan, restrictDest{parent: p})
		}
		plan[j].fines = append(plan[j].fines, g)
	}
	return plan
}

// runFillDest executes one destination's work list. The boundary
// clamp copies the nearest interior cell; clamping first to the
// domain and then to the grid box equals clamping to the grid box
// alone because every grid box is inside the domain.
func (h *Hierarchy) runFillDest(d *fillDest) {
	for _, op := range d.ops {
		if op.prolong {
			for _, f := range h.Fields {
				grid.Prolong(d.g.Patch, op.src.Patch, f, h.RefFactor, op.region)
			}
		} else {
			for _, f := range h.Fields {
				grid.CopyRegion(d.g.Patch, op.src.Patch, f, op.region)
			}
		}
	}
	for _, cb := range d.clamps {
		for _, f := range h.Fields {
			grid.ClampRegion(d.g.Patch, f, cb, d.g.Box)
		}
	}
}

// execFillPlan runs every destination's work list, in parallel over
// the pool when one is attached (destinations never alias).
func (h *Hierarchy) execFillPlan(plan []fillDest) {
	if h.pool != nil && h.pool.Workers() > 1 && len(plan) > 1 {
		h.pool.ForEach(len(plan), func(i int) { h.runFillDest(&plan[i]) })
		return
	}
	for i := range plan {
		h.runFillDest(&plan[i])
	}
}

// runRestrictDest restricts every fine grid of one parent group.
func (h *Hierarchy) runRestrictDest(d *restrictDest) {
	for _, g := range d.fines {
		for _, f := range h.Fields {
			grid.Restrict(d.parent.Patch, g.Patch, f, h.RefFactor)
		}
	}
}

// execRestrictPlan runs the restriction groups, in parallel over the
// pool when one is attached (each parent belongs to one group).
func (h *Hierarchy) execRestrictPlan(plan []restrictDest) {
	if h.pool != nil && h.pool.Workers() > 1 && len(plan) > 1 {
		h.pool.ForEach(len(plan), func(i int) { h.runRestrictDest(&plan[i]) })
		return
	}
	for i := range plan {
		h.runRestrictDest(&plan[i])
	}
}

// fillGhostsChecked is the -datacheck oracle: run the planned fill,
// then re-run the scan-based fill from the same pre-state and demand
// bitwise equality. Sources are never written by a fill, so swapping
// each destination's patch for its pre-fill clone and re-running the
// scan reproduces the baseline exactly. The planned result is kept
// (the original patch objects stay installed).
func (h *Hierarchy) fillGhostsChecked(l int, plan []fillDest) {
	grids := h.Grids(l)
	pre := make([]*grid.Patch, len(grids))
	for i, g := range grids {
		pre[i] = g.Patch.Clone()
	}
	h.execFillPlan(plan)
	planned := make([]*grid.Patch, len(grids))
	for i, g := range grids {
		planned[i] = g.Patch
		g.Patch = pre[i]
	}
	h.FillGhostsScan(l)
	for i, g := range grids {
		comparePatches("FillGhosts", l, g.ID, g.Patch, planned[i])
		g.Patch = planned[i]
	}
}

// restrictChecked is the -datacheck oracle for restriction: planned
// vs scan-based, compared bitwise on every written parent.
func (h *Hierarchy) restrictChecked(l int, plan []restrictDest) {
	pre := make([]*grid.Patch, len(plan))
	for i := range plan {
		pre[i] = plan[i].parent.Patch.Clone()
	}
	h.execRestrictPlan(plan)
	planned := make([]*grid.Patch, len(plan))
	for i := range plan {
		planned[i] = plan[i].parent.Patch
		plan[i].parent.Patch = pre[i]
	}
	h.RestrictDataScan(l)
	for i := range plan {
		comparePatches("Restrict", l, plan[i].parent.ID, plan[i].parent.Patch, planned[i])
		plan[i].parent.Patch = planned[i]
	}
}

// comparePatches panics with cell-level detail when the planned data
// motion diverged from the scan baseline (want = scan, got = planned).
func comparePatches(op string, l int, id GridID, want, got *grid.Patch) {
	g := want.Grown()
	for _, f := range want.FieldNames() {
		wf, gf := want.Field(f), got.Field(f)
		for k := range wf {
			if wf[k] != gf[k] {
				panic(fmt.Sprintf(
					"amr: %s datacheck diverged: level %d grid %d field %q cell %v: planned %v, scan %v",
					op, l, id, f, g.IndexAt(k), gf[k], wf[k]))
			}
		}
	}
}
