package amr

import (
	"encoding/gob"
	"fmt"
	"io"

	"samrdlb/internal/geom"
)

// Checkpointing: a Hierarchy (structure, ownership, and field data)
// can be written to a stream and reconstructed later — long SAMR
// campaigns are restarted far more often than they finish in one
// sitting.

// checkpointHeader is the serialized form of the hierarchy metadata.
type checkpointHeader struct {
	Domain    geom.Box
	RefFactor int
	MaxLevel  int
	NGhost    int
	Fields    []string
	WithData  bool
	NumGrids  int
}

// checkpointGrid is the serialized form of one grid.
type checkpointGrid struct {
	ID     GridID
	Level  int
	Box    geom.Box
	Owner  int
	Parent GridID
	// Data holds each field's storage over the grown box, in
	// h.Fields order; nil for plan-only hierarchies.
	Data [][]float64
}

// Save writes the hierarchy to w. The encoding is self-contained:
// Load needs nothing but the stream.
func (h *Hierarchy) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	hdr := checkpointHeader{
		Domain:    h.Domain,
		RefFactor: h.RefFactor,
		MaxLevel:  h.MaxLevel,
		NGhost:    h.NGhost,
		Fields:    h.Fields,
		WithData:  h.WithData,
	}
	for l := 0; l <= h.MaxLevel; l++ {
		hdr.NumGrids += len(h.Grids(l))
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("amr.Save: header: %w", err)
	}
	for l := 0; l <= h.MaxLevel; l++ {
		for _, g := range h.Grids(l) {
			cg := checkpointGrid{
				ID: g.ID, Level: g.Level, Box: g.Box,
				Owner: g.Owner, Parent: g.Parent,
			}
			if h.WithData && g.Patch != nil {
				cg.Data = make([][]float64, len(h.Fields))
				for i, f := range h.Fields {
					cg.Data[i] = g.Patch.Field(f)
				}
			}
			if err := enc.Encode(cg); err != nil {
				return fmt.Errorf("amr.Save: grid %d: %w", g.ID, err)
			}
		}
	}
	return nil
}

// Load reconstructs a hierarchy from a stream written by Save. Grid
// IDs, owners, parent links and field data are preserved exactly.
func Load(r io.Reader) (*Hierarchy, error) {
	dec := gob.NewDecoder(r)
	var hdr checkpointHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("amr.Load: header: %w", err)
	}
	h := New(hdr.Domain, hdr.RefFactor, hdr.MaxLevel, hdr.NGhost, hdr.WithData, hdr.Fields...)
	for i := 0; i < hdr.NumGrids; i++ {
		var cg checkpointGrid
		if err := dec.Decode(&cg); err != nil {
			return nil, fmt.Errorf("amr.Load: grid %d: %w", i, err)
		}
		// Grids were saved level by level, so parents precede children
		// and AddGrid's parent check holds. Restore exact IDs.
		g := h.AddGrid(cg.Level, cg.Box, cg.Owner, cg.Parent)
		if g.ID != cg.ID {
			// Re-key: checkpoint IDs are authoritative.
			delete(h.byID, g.ID)
			g.ID = cg.ID
			h.byID[g.ID] = g
			if cg.ID >= h.nextID {
				h.nextID = cg.ID + 1
			}
		}
		if hdr.WithData && cg.Data != nil {
			for fi, f := range hdr.Fields {
				copy(g.Patch.Field(f), cg.Data[fi])
			}
		}
	}
	if err := h.CheckProperNesting(); err != nil {
		return nil, fmt.Errorf("amr.Load: checkpoint violates nesting: %w", err)
	}
	return h, nil
}
