package amr

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"samrdlb/internal/geom"
)

// Checkpointing: a Hierarchy (structure, ownership, and field data)
// can be written to a stream and reconstructed later — long SAMR
// campaigns are restarted far more often than they finish in one
// sitting.

// checkpointHeader is the serialized form of the hierarchy metadata.
type checkpointHeader struct {
	Domain    geom.Box
	RefFactor int
	MaxLevel  int
	NGhost    int
	Fields    []string
	WithData  bool
	NumGrids  int
}

// checkpointGrid is the serialized form of one grid.
type checkpointGrid struct {
	ID     GridID
	Level  int
	Box    geom.Box
	Owner  int
	Parent GridID
	// Data holds each field's storage over the grown box, in
	// h.Fields order; nil for plan-only hierarchies.
	Data [][]float64
}

// Save writes the hierarchy to w. The encoding is self-contained:
// Load needs nothing but the stream.
func (h *Hierarchy) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	hdr := checkpointHeader{
		Domain:    h.Domain,
		RefFactor: h.RefFactor,
		MaxLevel:  h.MaxLevel,
		NGhost:    h.NGhost,
		Fields:    h.Fields,
		WithData:  h.WithData,
	}
	for l := 0; l <= h.MaxLevel; l++ {
		hdr.NumGrids += len(h.Grids(l))
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("amr.Save: header: %w", err)
	}
	for l := 0; l <= h.MaxLevel; l++ {
		for _, g := range h.Grids(l) {
			cg := checkpointGrid{
				ID: g.ID, Level: g.Level, Box: g.Box,
				Owner: g.Owner, Parent: g.Parent,
			}
			if h.WithData && g.Patch != nil {
				cg.Data = make([][]float64, len(h.Fields))
				for i, f := range h.Fields {
					cg.Data[i] = g.Patch.Field(f)
				}
			}
			if err := enc.Encode(cg); err != nil {
				return fmt.Errorf("amr.Save: grid %d: %w", g.ID, err)
			}
		}
	}
	return nil
}

// Sanity caps for checkpoint streams: anything beyond these is a
// corrupt or hostile file, not a plausible SAMR run.
const (
	maxLoadRefFactor = 16
	maxLoadMaxLevel  = 32
	maxLoadNGhost    = 16
	maxLoadFields    = 64
	maxLoadGrids     = 1 << 22
	maxLoadExtent    = 1 << 31 // finest-level domain extent per dimension
)

// validateHeader rejects corrupt or absurd checkpoint headers before
// any of New's panicking invariants can fire.
func (hdr *checkpointHeader) validate() error {
	if hdr.Domain.Empty() {
		return fmt.Errorf("empty domain %v", hdr.Domain)
	}
	if hdr.RefFactor < 2 || hdr.RefFactor > maxLoadRefFactor {
		return fmt.Errorf("refinement factor %d outside [2,%d]", hdr.RefFactor, maxLoadRefFactor)
	}
	if hdr.MaxLevel < 0 || hdr.MaxLevel > maxLoadMaxLevel {
		return fmt.Errorf("max level %d outside [0,%d]", hdr.MaxLevel, maxLoadMaxLevel)
	}
	if hdr.NGhost < 0 || hdr.NGhost > maxLoadNGhost {
		return fmt.Errorf("ghost width %d outside [0,%d]", hdr.NGhost, maxLoadNGhost)
	}
	if hdr.NumGrids < 0 || hdr.NumGrids > maxLoadGrids {
		return fmt.Errorf("grid count %d outside [0,%d]", hdr.NumGrids, maxLoadGrids)
	}
	if len(hdr.Fields) > maxLoadFields {
		return fmt.Errorf("%d fields exceed the cap of %d", len(hdr.Fields), maxLoadFields)
	}
	seen := make(map[string]bool, len(hdr.Fields))
	for _, f := range hdr.Fields {
		if f == "" {
			return fmt.Errorf("empty field name")
		}
		if seen[f] {
			return fmt.Errorf("duplicate field name %q", f)
		}
		seen[f] = true
	}
	// The finest-level domain extent must not overflow box arithmetic.
	scale := math.Pow(float64(hdr.RefFactor), float64(hdr.MaxLevel))
	for d := 0; d < 3; d++ {
		lo, hi := hdr.Domain.Lo[d], hdr.Domain.Hi[d]
		if lo < 0 || hi < lo {
			return fmt.Errorf("malformed domain %v", hdr.Domain)
		}
		if float64(hi+1)*scale > maxLoadExtent {
			return fmt.Errorf("domain %v at refinement %d^%d exceeds representable extent",
				hdr.Domain, hdr.RefFactor, hdr.MaxLevel)
		}
	}
	return nil
}

// validateGrid rejects a serialized grid that would violate the
// hierarchy's invariants (AddGrid panics on them; a corrupt stream
// must fail with an error instead).
func (h *Hierarchy) validateGrid(cg *checkpointGrid, hdr *checkpointHeader, seen map[GridID]bool) error {
	if cg.ID < 0 || seen[cg.ID] {
		return fmt.Errorf("invalid or duplicate grid ID %d", cg.ID)
	}
	if cg.Level < 0 || cg.Level > hdr.MaxLevel {
		return fmt.Errorf("level %d outside [0,%d]", cg.Level, hdr.MaxLevel)
	}
	if cg.Box.Empty() {
		return fmt.Errorf("empty box %v", cg.Box)
	}
	if !h.DomainAt(cg.Level).ContainsBox(cg.Box) {
		return fmt.Errorf("box %v escapes the level-%d domain %v", cg.Box, cg.Level, h.DomainAt(cg.Level))
	}
	if cg.Owner < 0 {
		return fmt.Errorf("negative owner %d", cg.Owner)
	}
	if cg.Level == 0 {
		if cg.Parent != NoGrid {
			return fmt.Errorf("level-0 grid claims parent %d", cg.Parent)
		}
	} else {
		p := h.byID[cg.Parent]
		if p == nil {
			return fmt.Errorf("parent %d not yet defined (grids must be saved level by level)", cg.Parent)
		}
		if p.Level != cg.Level-1 {
			return fmt.Errorf("parent %d is at level %d, not %d", cg.Parent, p.Level, cg.Level-1)
		}
	}
	if cg.Data != nil {
		if !hdr.WithData {
			return fmt.Errorf("field data present in a plan-only checkpoint")
		}
		if len(cg.Data) != len(hdr.Fields) {
			return fmt.Errorf("%d data fields, header declares %d", len(cg.Data), len(hdr.Fields))
		}
		want := cg.Box.Grow(hdr.NGhost).NumCells()
		for fi, d := range cg.Data {
			if int64(len(d)) != want {
				return fmt.Errorf("field %q has %d values, box %v with %d ghosts needs %d",
					hdr.Fields[fi], len(d), cg.Box, hdr.NGhost, want)
			}
		}
	}
	return nil
}

// Load reconstructs a hierarchy from a stream written by Save. Grid
// IDs, owners, parent links and field data are preserved exactly.
// Corrupt streams — truncated data, absurd headers, out-of-domain
// boxes, dangling parents, duplicate IDs, mis-shaped field data — are
// rejected with a descriptive error; Load never panics on bad input.
func Load(r io.Reader) (*Hierarchy, error) {
	dec := gob.NewDecoder(r)
	var hdr checkpointHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("amr.Load: header: %w", err)
	}
	if err := hdr.validate(); err != nil {
		return nil, fmt.Errorf("amr.Load: corrupt header: %w", err)
	}
	h := New(hdr.Domain, hdr.RefFactor, hdr.MaxLevel, hdr.NGhost, hdr.WithData, hdr.Fields...)
	seen := make(map[GridID]bool, hdr.NumGrids)
	for i := 0; i < hdr.NumGrids; i++ {
		var cg checkpointGrid
		if err := dec.Decode(&cg); err != nil {
			return nil, fmt.Errorf("amr.Load: grid %d: %w", i, err)
		}
		if err := h.validateGrid(&cg, &hdr, seen); err != nil {
			return nil, fmt.Errorf("amr.Load: corrupt grid %d: %w", i, err)
		}
		seen[cg.ID] = true
		// Grids were saved level by level, so parents precede children
		// and AddGrid's parent check holds. Restore exact IDs.
		g := h.AddGrid(cg.Level, cg.Box, cg.Owner, cg.Parent)
		if g.ID != cg.ID {
			// Re-key: checkpoint IDs are authoritative.
			delete(h.byID, g.ID)
			g.ID = cg.ID
			h.byID[g.ID] = g
			if cg.ID >= h.nextID {
				h.nextID = cg.ID + 1
			}
		}
		if hdr.WithData && cg.Data != nil {
			for fi, f := range hdr.Fields {
				copy(g.Patch.Field(f), cg.Data[fi])
			}
		}
	}
	if err := h.CheckProperNesting(); err != nil {
		return nil, fmt.Errorf("amr.Load: checkpoint violates nesting: %w", err)
	}
	return h, nil
}
