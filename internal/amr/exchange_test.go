package amr

import (
	"math"
	"testing"

	"samrdlb/internal/geom"
)

// twoSlabHierarchy builds level 0 as two adjacent 4x8x8 slabs owned by
// procs 0 and 1.
func twoSlabHierarchy(t *testing.T, withData bool) (*Hierarchy, *Grid, *Grid) {
	t.Helper()
	h := New(geom.UnitCube(8), 2, 1, 1, withData, "q")
	a := h.AddGrid(0, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 8, 8}), 0, NoGrid)
	b := h.AddGrid(0, geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{4, 8, 8}), 1, NoGrid)
	return h, a, b
}

func TestGhostPlanSiblings(t *testing.T) {
	h, a, b := twoSlabHierarchy(t, false)
	plan := h.GhostPlan(0, false)
	// Each slab needs one 1x8x8 plane from the other: 2 messages of
	// 64 cells * 8 bytes.
	if len(plan) != 2 {
		t.Fatalf("expected 2 messages, got %d: %v", len(plan), plan)
	}
	for _, m := range plan {
		if m.Kind != SiblingGhost {
			t.Errorf("kind = %v", m.Kind)
		}
		if m.Bytes != 64*8 {
			t.Errorf("bytes = %d, want 512", m.Bytes)
		}
		if !((m.Src == a.ID && m.Dst == b.ID) || (m.Src == b.ID && m.Dst == a.ID)) {
			t.Errorf("unexpected endpoints %v", m)
		}
	}
}

func TestGhostPlanDropLocal(t *testing.T) {
	h, _, b := twoSlabHierarchy(t, false)
	b.Owner = 0 // same proc now
	if plan := h.GhostPlan(0, true); len(plan) != 0 {
		t.Errorf("same-owner messages must be dropped: %v", plan)
	}
	if plan := h.GhostPlan(0, false); len(plan) != 2 {
		t.Error("dropLocal=false must keep all messages")
	}
}

func TestGhostPlanParentProlong(t *testing.T) {
	h := New(geom.UnitCube(8), 2, 1, 1, false, "q")
	p := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	// A lone fine grid in the middle: all its ghosts come from the
	// parent.
	h.AddGrid(1, geom.BoxFromShape(geom.Index{4, 4, 4}, geom.Index{4, 4, 4}), 1, p.ID)
	plan := h.GhostPlan(1, false)
	if len(plan) != 1 {
		t.Fatalf("expected 1 prolong message, got %v", plan)
	}
	m := plan[0]
	if m.Kind != ParentProlong || m.Src != p.ID {
		t.Errorf("unexpected message %v", m)
	}
	// Ghost shell of a 4^3 box with width 1 = 6^3-4^3 = 152 cells ->
	// ceil(152/8) = 19 coarse cells * 8 bytes.
	if m.Bytes != 19*8 {
		t.Errorf("bytes = %d, want 152", m.Bytes)
	}
	// Same-owner parent is dropped with dropLocal.
	h.Grids(1)[0].Owner = 0
	if plan := h.GhostPlan(1, true); len(plan) != 0 {
		t.Errorf("local prolong must be dropped: %v", plan)
	}
}

func TestGhostPlanSiblingBeatsParent(t *testing.T) {
	// Two adjacent fine grids: their shared face comes from each
	// other, the rest from the parent.
	h := New(geom.UnitCube(8), 2, 1, 1, false, "q")
	p := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	h.AddGrid(1, geom.BoxFromShape(geom.Index{4, 4, 4}, geom.Index{4, 4, 4}), 1, p.ID)
	h.AddGrid(1, geom.BoxFromShape(geom.Index{8, 4, 4}, geom.Index{4, 4, 4}), 2, p.ID)
	plan := h.GhostPlan(1, false)
	var sib, pro int
	for _, m := range plan {
		switch m.Kind {
		case SiblingGhost:
			sib++
			if m.Bytes != 16*8 {
				t.Errorf("sibling face bytes = %d, want 128", m.Bytes)
			}
		case ParentProlong:
			pro++
		}
	}
	if sib != 2 || pro != 2 {
		t.Errorf("expected 2 sibling + 2 prolong messages, got %d + %d", sib, pro)
	}
}

func TestRestrictPlan(t *testing.T) {
	h := New(geom.UnitCube(8), 2, 1, 1, false, "q")
	p := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	c := h.AddGrid(1, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{8, 8, 8}), 1, p.ID)
	plan := h.RestrictPlan(1, false)
	if len(plan) != 1 {
		t.Fatalf("plan = %v", plan)
	}
	m := plan[0]
	if m.Kind != ChildRestrict || m.Src != c.ID || m.Dst != p.ID {
		t.Errorf("message = %v", m)
	}
	// 512 fine cells -> 64 coarse cells * 8 bytes.
	if m.Bytes != 64*8 {
		t.Errorf("bytes = %d", m.Bytes)
	}
	if h.RestrictPlan(0, false) != nil {
		t.Error("level 0 has no restrict plan")
	}
	c.Owner = 0
	if plan := h.RestrictPlan(1, true); len(plan) != 0 {
		t.Error("local restrict must be dropped")
	}
}

func TestFillGhostsDataSiblingAndClamp(t *testing.T) {
	h, a, b := twoSlabHierarchy(t, true)
	a.Patch.FillConstant("q", 1)
	b.Patch.FillConstant("q", 2)
	h.FillGhostsData(0)
	// a's ghost plane at x=4 must hold b's value.
	if got := a.Patch.At("q", geom.Index{4, 3, 3}); got != 2 {
		t.Errorf("sibling ghost = %v, want 2", got)
	}
	// a's ghost at x=-1 is outside the domain: clamped to interior 1.
	if got := a.Patch.At("q", geom.Index{-1, 3, 3}); got != 1 {
		t.Errorf("boundary ghost = %v, want 1", got)
	}
}

func TestFillGhostsDataProlong(t *testing.T) {
	h := New(geom.UnitCube(8), 2, 1, 1, true, "q")
	p := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	p.Patch.FillConstant("q", 7)
	c := h.AddGrid(1, geom.BoxFromShape(geom.Index{4, 4, 4}, geom.Index{4, 4, 4}), 0, p.ID)
	c.Patch.FillConstant("q", 0)
	h.FillGhostsData(1)
	// A fine ghost cell inside the domain but outside any sibling gets
	// prolonged coarse data.
	if got := c.Patch.At("q", geom.Index{3, 4, 4}); got != 7 {
		t.Errorf("prolonged ghost = %v, want 7", got)
	}
	// Interior untouched.
	if got := c.Patch.At("q", geom.Index{5, 5, 5}); got != 0 {
		t.Errorf("interior overwritten: %v", got)
	}
}

func TestRestrictDataConservative(t *testing.T) {
	h := New(geom.UnitCube(4), 2, 1, 1, true, "q")
	p := h.AddGrid(0, geom.UnitCube(4), 0, NoGrid)
	c := h.AddGrid(1, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 4, 4}), 0, p.ID)
	c.Patch.FillConstant("q", 8)
	h.RestrictData(1)
	// Coarse cells covered by the child become the fine average (8).
	if got := p.Patch.At("q", geom.Index{0, 0, 0}); math.Abs(got-8) > 1e-14 {
		t.Errorf("restricted value = %v", got)
	}
	// Uncovered coarse cells stay 0.
	if got := p.Patch.At("q", geom.Index{3, 3, 3}); got != 0 {
		t.Errorf("uncovered cell touched: %v", got)
	}
}

func TestPlanOnlyHierarchySkipsData(t *testing.T) {
	h, a, _ := twoSlabHierarchy(t, false)
	// Must not panic on nil patches.
	h.FillGhostsData(0)
	h.RestrictData(1)
	if a.Patch != nil {
		t.Error("plan-only hierarchy must not allocate patches")
	}
}

func TestMsgKindString(t *testing.T) {
	if SiblingGhost.String() != "sibling-ghost" ||
		ParentProlong.String() != "parent-prolong" ||
		ChildRestrict.String() != "child-restrict" ||
		MsgKind(9).String() != "unknown" {
		t.Error("MsgKind names wrong")
	}
}
