package amr

import "fmt"

// The -plancheck oracle, in the -ledgercheck/-datacheck idiom: every
// time a cached plan is served, re-derive the same plan with the
// retained O(n²) scan planners from the current structure and demand
// bitwise equality. This catches both indexed-query bugs (a bucket
// query missing a neighbor the scan would have found) and incremental-
// maintenance bugs (a mutation whose dirty marking failed to re-plan
// an affected destination — the stale entry survives patching and
// diverges from the fresh scan). Structure-only and deterministic, so
// unlike -datacheck it is safe on multi-process worker shards.

// verifyPlans checks every built plan kind of level l against its scan
// baseline, panicking with entry-level detail on divergence. Callers
// hold planMu.
func (h *Hierarchy) verifyPlans(l int, c *planCache) {
	if c.msgBuilt {
		comparePlanMessages("GhostPlan", l, h.GhostPlanScan(l, false), c.ghost)
		comparePlanMessages("RestrictPlan", l, h.RestrictPlan(l, false), c.restrict)
	}
	if c.fillBuilt {
		compareFillPlans(l, h.buildFillPlanScan(l), c.fill)
	}
	if c.restrictBuilt {
		compareRestrictPlans(l, h.buildRestrictDataPlan(l), c.restrictData)
	}
}

// comparePlanMessages panics when the cached message plan diverged
// from the scan baseline (want = scan, got = cached).
func comparePlanMessages(op string, l int, want, got []Message) {
	if len(want) != len(got) {
		panic(fmt.Sprintf(
			"amr: %s plancheck diverged: level %d: cached %d messages, scan %d",
			op, l, len(got), len(want)))
	}
	for i := range want {
		if want[i] != got[i] {
			panic(fmt.Sprintf(
				"amr: %s plancheck diverged: level %d message %d: cached %+v, scan %+v",
				op, l, i, got[i], want[i]))
		}
	}
}

// compareFillPlans panics when the cached fill plan diverged from the
// scan baseline.
func compareFillPlans(l int, want, got []fillDest) {
	if len(want) != len(got) {
		panic(fmt.Sprintf(
			"amr: FillPlan plancheck diverged: level %d: cached %d destinations, scan %d",
			l, len(got), len(want)))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if w.g != g.g {
			panic(fmt.Sprintf(
				"amr: FillPlan plancheck diverged: level %d destination %d: cached grid %d, scan grid %d",
				l, i, g.g.ID, w.g.ID))
		}
		if len(w.ops) != len(g.ops) {
			panic(fmt.Sprintf(
				"amr: FillPlan plancheck diverged: level %d grid %d: cached %d ops, scan %d",
				l, w.g.ID, len(g.ops), len(w.ops)))
		}
		for j := range w.ops {
			if w.ops[j] != g.ops[j] {
				panic(fmt.Sprintf(
					"amr: FillPlan plancheck diverged: level %d grid %d op %d: cached %+v, scan %+v",
					l, w.g.ID, j, g.ops[j], w.ops[j]))
			}
		}
		if len(w.clamps) != len(g.clamps) {
			panic(fmt.Sprintf(
				"amr: FillPlan plancheck diverged: level %d grid %d: cached %d clamps, scan %d",
				l, w.g.ID, len(g.clamps), len(w.clamps)))
		}
		for j := range w.clamps {
			if w.clamps[j] != g.clamps[j] {
				panic(fmt.Sprintf(
					"amr: FillPlan plancheck diverged: level %d grid %d clamp %d: cached %v, scan %v",
					l, w.g.ID, j, g.clamps[j], w.clamps[j]))
			}
		}
	}
}

// compareRestrictPlans panics when the cached grouped restriction plan
// diverged from a fresh build.
func compareRestrictPlans(l int, want, got []restrictDest) {
	if len(want) != len(got) {
		panic(fmt.Sprintf(
			"amr: RestrictDataPlan plancheck diverged: level %d: cached %d groups, scan %d",
			l, len(got), len(want)))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if w.parent != g.parent {
			panic(fmt.Sprintf(
				"amr: RestrictDataPlan plancheck diverged: level %d group %d: cached parent %d, scan parent %d",
				l, i, g.parent.ID, w.parent.ID))
		}
		if len(w.fines) != len(g.fines) {
			panic(fmt.Sprintf(
				"amr: RestrictDataPlan plancheck diverged: level %d parent %d: cached %d fines, scan %d",
				l, w.parent.ID, len(g.fines), len(w.fines)))
		}
		for j := range w.fines {
			if w.fines[j] != g.fines[j] {
				panic(fmt.Sprintf(
					"amr: RestrictDataPlan plancheck diverged: level %d parent %d fine %d: cached grid %d, scan grid %d",
					l, w.parent.ID, j, g.fines[j].ID, w.fines[j].ID))
			}
		}
	}
}
