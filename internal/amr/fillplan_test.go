package amr

import (
	"testing"

	"samrdlb/internal/cluster"
	"samrdlb/internal/geom"
	"samrdlb/internal/solver"
)

// TestFillPlanMatchesScan: the cached-plan ghost fill must be bitwise
// identical to the original scan-based fill, sequential and pooled.
func TestFillPlanMatchesScan(t *testing.T) {
	for _, workers := range []int{1, 4} {
		planned := buildDataHierarchy(t, 3)
		scanned := cloneHierarchy(planned)
		if workers > 1 {
			planned.SetPool(solver.NewPool(workers))
		}
		for l := 0; l <= 1; l++ {
			planned.FillGhostsData(l)
			scanned.FillGhostsScan(l)
		}
		assertSameData(t, scanned, planned, "fill")
	}
}

// TestRestrictPlanMatchesScan: same for the grouped restriction plan.
func TestRestrictPlanMatchesScan(t *testing.T) {
	for _, workers := range []int{1, 4} {
		planned := buildDataHierarchy(t, 3)
		scanned := cloneHierarchy(planned)
		if workers > 1 {
			planned.SetPool(solver.NewPool(workers))
		}
		planned.RestrictData(1)
		scanned.RestrictDataScan(1)
		assertSameData(t, scanned, planned, "restrict")
	}
}

// TestFillPlanInvalidation: structural mutations (AddGrid, RemoveGrid,
// SplitGrid) bump the generation and must rebuild the cached plan; a
// stale plan would read or skip the wrong grids.
func TestFillPlanInvalidation(t *testing.T) {
	planned := buildDataHierarchy(t, 2)
	// Build and use the initial plan.
	for l := 0; l <= 1; l++ {
		planned.FillGhostsData(l)
	}
	planned.RestrictData(1)

	// Mutate: split one level-0 grid, remove one fine grid, add a new
	// fine grid elsewhere.
	g0 := planned.Grids(0)[0]
	planned.SplitGrid(g0, 0, g0.Box.Lo[0]+2)
	fines := planned.Grids(1)
	planned.RemoveGrid(fines[len(fines)-1].ID)
	target := geom.BoxFromShape(geom.Index{10, 10, 10}, geom.Index{2, 2, 2})
	var parent *Grid
	var child geom.Box
	for _, g := range planned.Grids(0) {
		if child = g.Box.Intersect(target); !child.Empty() {
			parent = g
			break
		}
	}
	if parent == nil {
		t.Fatal("fixture: expected overlap for new child")
	}
	ng := planned.AddGrid(1, child.Refine(2), parent.Owner, parent.ID)
	ng.Patch.FillConstant("q", 7)
	ng.Patch.FillConstant("rho", 8)
	if err := planned.CheckProperNesting(); err != nil {
		t.Fatalf("fixture: %v", err)
	}

	// A fresh clone shares no plan cache; scan fill on it is ground truth.
	scanned := cloneHierarchy(planned)
	for l := 0; l <= 1; l++ {
		planned.FillGhostsData(l)
		scanned.FillGhostsScan(l)
	}
	planned.RestrictData(1)
	scanned.RestrictDataScan(1)
	assertSameData(t, scanned, planned, "after mutation")
}

// TestDataCheckOracle: with the oracle armed, planned fill/restrict
// self-verify against the scan baseline and must not diverge.
func TestDataCheckOracle(t *testing.T) {
	h := buildDataHierarchy(t, 2)
	h.SetPool(solver.NewPool(4))
	h.SetDataCheck(true)
	want := cloneHierarchy(h)
	for l := 0; l <= 1; l++ {
		h.FillGhostsData(l)
		want.FillGhostsScan(l)
	}
	h.RestrictData(1)
	want.RestrictDataScan(1)
	assertSameData(t, want, h, "datacheck")
}

// TestRegridPoolMatchesSequential: pool-parallel child initialisation
// in RegridAll must produce exactly the sequential result.
func TestRegridPoolMatchesSequential(t *testing.T) {
	build := func(pool *solver.Pool) *Hierarchy {
		h := New(geom.UnitCube(16), 2, 1, 1, true, "q")
		if pool != nil {
			h.SetPool(pool)
		}
		g := h.AddGrid(0, geom.UnitCube(16), 0, NoGrid)
		g.Patch.FillFunc("q", func(i geom.Index) float64 {
			return float64(i[0]*37+i[1]*11+i[2]) * 0.25
		})
		flag := func(level int, f *cluster.FlagField) {
			f.SetWhere(func(i geom.Index) bool { return (i[0]+i[1]+i[2])%5 == 0 })
		}
		h.RegridAll(0, flag, RegridParams{Cluster: cluster.DefaultParams()}, nil)
		return h
	}
	seq := build(nil)
	par := build(solver.NewPool(4))
	assertSameData(t, seq, par, "regrid")
}
