package solver

import (
	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

// Multigrid solves the Poisson equation ∇²φ = ρ on a single patch
// with a geometric V-cycle: red-black Gauss–Seidel smoothing, full
// residual restriction, piecewise-constant correction prolongation,
// recursing down to a small coarsest grid. It converges in a handful
// of cycles where plain relaxation needs hundreds of sweeps — the
// practical elliptic engine for the AMR64-style workload.
//
// Boundary conditions are Dirichlet, taken from the patch's current
// ghost values (corrections use homogeneous ghosts, preserving the
// boundary data).
type Multigrid struct {
	// PreSmooth and PostSmooth are the GS sweeps around each
	// coarse-grid correction (defaults 2 and 2).
	PreSmooth, PostSmooth int
	// Cycles is the number of V-cycles per Step (default 2).
	Cycles int
	// CoarsestSize stops coarsening when any extent drops to this
	// size or below (default 4); the coarsest level is smoothed hard.
	CoarsestSize int
}

// Name implements Kernel.
func (mg Multigrid) Name() string { return "multigrid-poisson" }

// Fields implements Kernel.
func (mg Multigrid) Fields() []string { return []string{FieldPhi, FieldRho} }

// FlopsPerCell implements Kernel: a V-cycle visits ~8/7 of the fine
// cells with (pre+post) smoothing sweeps plus residual/transfer work.
func (mg Multigrid) FlopsPerCell() float64 {
	return 1.15 * float64(mg.pre()+mg.post()+2) * 10 * float64(mg.cycles())
}

func (mg Multigrid) pre() int {
	if mg.PreSmooth <= 0 {
		return 2
	}
	return mg.PreSmooth
}

func (mg Multigrid) post() int {
	if mg.PostSmooth <= 0 {
		return 2
	}
	return mg.PostSmooth
}

func (mg Multigrid) cycles() int {
	if mg.Cycles <= 0 {
		return 2
	}
	return mg.Cycles
}

func (mg Multigrid) coarsest() int {
	if mg.CoarsestSize <= 0 {
		return 4
	}
	return mg.CoarsestSize
}

// Step implements Kernel: it runs the configured V-cycles (dt is
// ignored; the elliptic problem is quasi-static within a step).
func (mg Multigrid) Step(p *grid.Patch, _ float64, dx float64) {
	checkFields(p, mg)
	for c := 0; c < mg.cycles(); c++ {
		mg.vcycle(p, dx)
	}
}

// Solve iterates V-cycles until the max-norm residual falls below tol
// (or maxCycles is hit) and reports the cycle count and final
// residual.
func (mg Multigrid) Solve(p *grid.Patch, dx, tol float64, maxCycles int) (cycles int, residual float64) {
	checkFields(p, mg)
	for cycles = 0; cycles < maxCycles; cycles++ {
		residual = Residual(p, dx)
		if residual <= tol {
			return cycles, residual
		}
		mg.vcycle(p, dx)
	}
	return cycles, Residual(p, dx)
}

// vcycle performs one V-cycle on the patch in place.
func (mg Multigrid) vcycle(p *grid.Patch, dx float64) {
	gs := GaussSeidel{Sweeps: mg.pre()}
	s := p.Box.Shape()
	if min(s[0], min(s[1], s[2])) <= mg.coarsest() || s[0]%2 != 0 || s[1]%2 != 0 || s[2]%2 != 0 {
		// Coarsest (or un-coarsenable) level: smooth hard.
		GaussSeidel{Sweeps: 20}.Step(p, 0, dx)
		return
	}
	// Pre-smooth.
	gs.Step(p, 0, dx)

	// Residual r = ρ − ∇²φ on the fine level.
	res := grid.NewPatch(p.Box, p.Level, p.NGhost, FieldPhi, FieldRho)
	phi := p.Field(FieldPhi)
	rho := p.Field(FieldRho)
	rr := res.Field(FieldRho)
	g := p.Grown()
	sh := g.Shape()
	stride := [3]int{1, sh[0], sh[0] * sh[1]}
	h2 := dx * dx
	rg := res.Grown()
	p.Box.ForEach(func(i geom.Index) {
		off := g.Offset(i)
		lap := (phi[off-stride[0]] + phi[off+stride[0]] +
			phi[off-stride[1]] + phi[off+stride[1]] +
			phi[off-stride[2]] + phi[off+stride[2]] - 6*phi[off]) / h2
		rr[rg.Offset(i)] = rho[off] - lap
	})

	// Coarse-grid correction: restrict the residual, solve the error
	// equation with zero initial guess and zero Dirichlet ghosts,
	// prolong and add.
	cBox := p.Box.Coarsen(2)
	coarse := grid.NewPatch(cBox, p.Level, p.NGhost, FieldPhi, FieldRho)
	grid.Restrict(shiftLevel(coarse, p.Level-1), shiftLevel(res, p.Level), FieldRho, 2)
	mg.vcycle(coarse, 2*dx)
	corr := grid.NewPatch(p.Box, p.Level, p.NGhost, FieldPhi, FieldRho)
	grid.ProlongLinear(shiftLevel(corr, p.Level), shiftLevel(coarse, p.Level-1), FieldPhi, 2, corr.Box)
	cf := corr.Field(FieldPhi)
	cg := corr.Grown()
	p.Box.ForEach(func(i geom.Index) {
		phi[g.Offset(i)] += cf[cg.Offset(i)]
	})

	// Post-smooth.
	GaussSeidel{Sweeps: mg.post()}.Step(p, 0, dx)
}

// shiftLevel relabels a patch's level so grid.Restrict/Prolong accept
// the pair; the multigrid pyramid reuses the AMR transfer operators
// between its internal levels.
func shiftLevel(p *grid.Patch, level int) *grid.Patch {
	p.Level = level
	return p
}
