package solver

import "math"

// Particle is a point mass with position and velocity in continuous
// domain coordinates. The AMR64 dataset integrates "a set of ordinary
// differential equations for the particle trajectories"; this leapfrog
// integrator reproduces that workload component.
type Particle struct {
	Pos  [3]float64
	Vel  [3]float64
	Mass float64
}

// ParticleSet integrates particles under a smooth central-attractor
// force field (a cheap stand-in for self-gravity toward cluster
// centres). Forces from the actual mesh potential are not needed for
// the DLB study — only the per-particle cost and the particle motion
// that drives refinement matter.
type ParticleSet struct {
	Particles []Particle
	// Centers are the attractor positions; each particle accelerates
	// toward its nearest centre.
	Centers [][3]float64
	// G scales the attraction strength.
	G float64
	// Domain is the periodic domain edge length; positions wrap.
	Domain float64
}

// FlopsPerParticle is the nominal per-particle cost of one kick-drift
// step, used by the compute model.
const FlopsPerParticle = 40.0

// Step advances all particles by dt with kick-drift-kick leapfrog.
func (ps *ParticleSet) Step(dt float64) {
	for i := range ps.Particles {
		p := &ps.Particles[i]
		a := ps.accel(p.Pos)
		for d := 0; d < 3; d++ {
			p.Vel[d] += 0.5 * dt * a[d]
			p.Pos[d] += dt * p.Vel[d]
			if ps.Domain > 0 {
				p.Pos[d] = math.Mod(p.Pos[d]+ps.Domain, ps.Domain)
			}
		}
		a = ps.accel(p.Pos)
		for d := 0; d < 3; d++ {
			p.Vel[d] += 0.5 * dt * a[d]
		}
	}
}

func (ps *ParticleSet) accel(pos [3]float64) [3]float64 {
	if len(ps.Centers) == 0 {
		return [3]float64{}
	}
	// Find nearest centre.
	best, bd := 0, math.Inf(1)
	for i, c := range ps.Centers {
		d := dist2(pos, c)
		if d < bd {
			best, bd = i, d
		}
	}
	c := ps.Centers[best]
	r := math.Sqrt(bd) + 1e-6
	var a [3]float64
	for d := 0; d < 3; d++ {
		a[d] = ps.G * (c[d] - pos[d]) / (r * r * r)
	}
	return a
}

// KineticEnergy returns the total kinetic energy of the set, used by
// tests to check the integrator is sane (bounded orbits under a
// central force).
func (ps *ParticleSet) KineticEnergy() float64 {
	var e float64
	for _, p := range ps.Particles {
		v2 := p.Vel[0]*p.Vel[0] + p.Vel[1]*p.Vel[1] + p.Vel[2]*p.Vel[2]
		e += 0.5 * p.Mass * v2
	}
	return e
}

// CountInRegion returns how many particles lie in the axis-aligned
// region [lo,hi) of domain coordinates.
func (ps *ParticleSet) CountInRegion(lo, hi [3]float64) int {
	n := 0
	for _, p := range ps.Particles {
		in := true
		for d := 0; d < 3; d++ {
			if p.Pos[d] < lo[d] || p.Pos[d] >= hi[d] {
				in = false
				break
			}
		}
		if in {
			n++
		}
	}
	return n
}

func dist2(a, b [3]float64) float64 {
	var s float64
	for d := 0; d < 3; d++ {
		v := a[d] - b[d]
		s += v * v
	}
	return s
}
