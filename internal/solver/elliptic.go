package solver

import (
	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

// Field names used by the elliptic kernel.
const (
	// FieldPhi is the potential solved for.
	FieldPhi = "phi"
	// FieldRho is the source term.
	FieldRho = "rho"
)

// GaussSeidel is a red-black Gauss–Seidel/SOR relaxation kernel for
// the Poisson equation ∇²φ = ρ. The AMR64 dataset couples an elliptic
// solve (self-gravity) to the fluid step; within the distributed
// execution model the kernel contributes its per-cell cost times the
// sweep count.
type GaussSeidel struct {
	// Sweeps is the number of red-black sweeps per Step (default 4).
	Sweeps int
	// Omega is the SOR over-relaxation factor (default 1.0 = plain
	// Gauss–Seidel).
	Omega float64
}

// Name implements Kernel.
func (gs GaussSeidel) Name() string { return "gauss-seidel-poisson" }

// Fields implements Kernel.
func (gs GaussSeidel) Fields() []string { return poissonFields }

// FlopsPerCell implements Kernel: ~10 flops per relaxation update per
// sweep.
func (gs GaussSeidel) FlopsPerCell() float64 { return 10 * float64(gs.sweeps()) }

func (gs GaussSeidel) sweeps() int {
	if gs.Sweeps <= 0 {
		return 4
	}
	return gs.Sweeps
}

func (gs GaussSeidel) omega() float64 {
	if gs.Omega <= 0 {
		return 1.0
	}
	return gs.Omega
}

// Step implements Kernel: it relaxes φ toward the solution of
// ∇²φ = ρ with Dirichlet data taken from the current ghost cells.
// dt is ignored (the elliptic problem is quasi-static within a step).
// The red-black sweeps are explicit parity-strided row loops (no
// per-cell closure, no skipped-cell work), visiting cells in exactly
// the order the closure-based original did.
func (gs GaussSeidel) Step(p *grid.Patch, _ float64, dx float64) {
	checkFieldList(p, gs.Name(), poissonFields)
	if p.NGhost < 1 {
		panic("solver.GaussSeidel: needs at least one ghost cell")
	}
	phi := p.Field(FieldPhi)
	rho := p.Field(FieldRho)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	h2 := dx * dx
	w := gs.omega()
	b := p.Box
	for sweep := 0; sweep < gs.sweeps(); sweep++ {
		for color := 0; color < 2; color++ {
			for z := b.Lo[2]; z <= b.Hi[2]; z++ {
				for y := b.Lo[1]; y <= b.Hi[1]; y++ {
					x0 := b.Lo[0]
					if (x0+y+z)&1 != color {
						x0++
					}
					if x0 > b.Hi[0] {
						continue
					}
					off := g.Offset(geom.Index{x0, y, z})
					for x := x0; x <= b.Hi[0]; x += 2 {
						nb := phi[off-stride[0]] + phi[off+stride[0]] +
							phi[off-stride[1]] + phi[off+stride[1]] +
							phi[off-stride[2]] + phi[off+stride[2]]
						target := (nb - h2*rho[off]) / 6.0
						phi[off] += w * (target - phi[off])
						off += 2
					}
				}
			}
		}
	}
}

// Residual returns the max-norm of ∇²φ − ρ over the patch interior,
// for convergence testing.
func Residual(p *grid.Patch, dx float64) float64 {
	phi := p.Field(FieldPhi)
	rho := p.Field(FieldRho)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	h2 := dx * dx
	var worst float64
	p.Box.ForEach(func(i geom.Index) {
		off := g.Offset(i)
		lap := (phi[off-stride[0]] + phi[off+stride[0]] +
			phi[off-stride[1]] + phi[off+stride[1]] +
			phi[off-stride[2]] + phi[off+stride[2]] - 6*phi[off]) / h2
		r := lap - rho[off]
		if r < 0 {
			r = -r
		}
		if r > worst {
			worst = r
		}
	})
	return worst
}
