package solver

import (
	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

// Face-flux machinery for conservative coarse–fine coupling
// (refluxing). A finite-volume step can be written as
//
//	q_i ← q_i − Σ_d (F_d(i+e_d) − F_d(i))
//
// where F_d(i) is the (nondimensionalised, λ = dt/dx scaled) flux
// through the face separating cells i−e_d and i. Refluxing needs the
// kernels to expose F so fine-level fluxes can replace the coarse
// flux at coarse–fine interfaces (see amr.FluxRegister).

// Fluxes holds face-centred fluxes for one patch step. For dimension
// d, the face indexed by cell i is the lower face of cell i; faces
// run over the interior box extended by one plane on the high side.
type Fluxes struct {
	// Box is the cell-interior box the fluxes belong to.
	Box geom.Box
	// faceBox[d] is Box grown by one plane on the high side of d.
	faceBox [3]geom.Box
	f       [3][]float64
}

// NewFluxes allocates zeroed fluxes over the interior box.
func NewFluxes(box geom.Box) *Fluxes {
	fl := &Fluxes{Box: box}
	for d := 0; d < 3; d++ {
		fl.faceBox[d] = box.GrowDim(d, 0, 1)
		fl.f[d] = make([]float64, fl.faceBox[d].NumCells())
	}
	return fl
}

// At returns the flux through face (d, i) — the lower face of cell i
// in dimension d. The face must exist for this box.
func (fl *Fluxes) At(d int, i geom.Index) float64 {
	return fl.f[d][fl.faceBox[d].Offset(i)]
}

// Set stores a face flux.
func (fl *Fluxes) Set(d int, i geom.Index, v float64) {
	fl.f[d][fl.faceBox[d].Offset(i)] = v
}

// FaceBox returns the face index box for dimension d.
func (fl *Fluxes) FaceBox(d int) geom.Box { return fl.faceBox[d] }

// FluxedKernel is a kernel that can expose its face fluxes.
type FluxedKernel interface {
	Kernel
	// StepFluxes advances the patch exactly as Step does and returns
	// the face fluxes it applied (λ-scaled: the update is the flux
	// difference directly).
	StepFluxes(p *grid.Patch, dt, dx float64) *Fluxes
}

// StepFluxes implements FluxedKernel for the upwind advection scheme.
func (a Advection3D) StepFluxes(p *grid.Patch, dt, dx float64) *Fluxes {
	checkFields(p, a)
	if p.NGhost < 1 {
		panic("solver.Advection3D: needs at least one ghost cell")
	}
	q := p.Field(FieldQ)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	lam := dt / dx
	fl := NewFluxes(p.Box)
	for d := 0; d < 3; d++ {
		v := a.Vel[d]
		fl.faceBox[d].ForEach(func(i geom.Index) {
			off := g.Offset(i)
			var qup float64
			if v >= 0 {
				qup = q[off-stride[d]] // face's lower cell
			} else {
				qup = q[off]
			}
			fl.Set(d, i, v*lam*qup)
		})
	}
	// Apply: q_i -= F(i+e_d) - F(i).
	out := make([]float64, len(q))
	copy(out, q)
	p.Box.ForEach(func(i geom.Index) {
		off := g.Offset(i)
		var du float64
		for d := 0; d < 3; d++ {
			var hi geom.Index
			hi = i
			hi[d]++
			du -= fl.At(d, hi) - fl.At(d, i)
		}
		out[off] = q[off] + du
	})
	copy(q, out)
	return fl
}
