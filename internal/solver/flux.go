package solver

import (
	"sync"

	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

// Face-flux machinery for conservative coarse–fine coupling
// (refluxing). A finite-volume step can be written as
//
//	q_i ← q_i − Σ_d (F_d(i+e_d) − F_d(i))
//
// where F_d(i) is the (nondimensionalised, λ = dt/dx scaled) flux
// through the face separating cells i−e_d and i. Refluxing needs the
// kernels to expose F so fine-level fluxes can replace the coarse
// flux at coarse–fine interfaces (see amr.FluxRegister).

// Fluxes holds face-centred fluxes for one patch step. For dimension
// d, the face indexed by cell i is the lower face of cell i; faces
// run over the interior box extended by one plane on the high side.
type Fluxes struct {
	// Box is the cell-interior box the fluxes belong to.
	Box geom.Box
	// faceBox[d] is Box grown by one plane on the high side of d.
	faceBox [3]geom.Box
	f       [3][]float64
}

// fluxPool recycles Fluxes across steps: every fluxed kernel step on
// every grid needs one, and the flux registers copy the values out,
// so the object is dead as soon as the engine has fed the registers.
var fluxPool = sync.Pool{New: func() any { return new(Fluxes) }}

// NewFluxes returns zeroed fluxes over the interior box, reusing a
// released Fluxes when one is available.
func NewFluxes(box geom.Box) *Fluxes {
	fl := fluxPool.Get().(*Fluxes)
	fl.Box = box
	for d := 0; d < 3; d++ {
		fl.faceBox[d] = box.GrowDim(d, 0, 1)
		n := int(fl.faceBox[d].NumCells())
		if cap(fl.f[d]) < n {
			fl.f[d] = make([]float64, n)
		} else {
			fl.f[d] = fl.f[d][:n]
			clear(fl.f[d]) // keep the documented zeroed contract on reuse
		}
	}
	return fl
}

// newFluxesAlloc always heap-allocates (reference paths, so the
// pooled fast path can be compared against untouched baselines).
func newFluxesAlloc(box geom.Box) *Fluxes {
	fl := &Fluxes{Box: box}
	for d := 0; d < 3; d++ {
		fl.faceBox[d] = box.GrowDim(d, 0, 1)
		fl.f[d] = make([]float64, fl.faceBox[d].NumCells())
	}
	return fl
}

// Release returns the fluxes to the reuse pool. The caller must not
// touch fl afterwards; values read out of it (e.g. by the flux
// registers, which copy) stay valid.
func (fl *Fluxes) Release() { fluxPool.Put(fl) }

// At returns the flux through face (d, i) — the lower face of cell i
// in dimension d. The face must exist for this box.
func (fl *Fluxes) At(d int, i geom.Index) float64 {
	return fl.f[d][fl.faceBox[d].Offset(i)]
}

// Set stores a face flux.
func (fl *Fluxes) Set(d int, i geom.Index, v float64) {
	fl.f[d][fl.faceBox[d].Offset(i)] = v
}

// FaceBox returns the face index box for dimension d.
func (fl *Fluxes) FaceBox(d int) geom.Box { return fl.faceBox[d] }

// faceStride returns the linear stride along dimension d inside
// faceBox[d]'s x-fastest storage.
func (fl *Fluxes) faceStride(d int) int {
	s := fl.faceBox[d].Shape()
	switch d {
	case 0:
		return 1
	case 1:
		return s[0]
	default:
		return s[0] * s[1]
	}
}

// FluxedKernel is a kernel that can expose its face fluxes.
type FluxedKernel interface {
	Kernel
	// StepFluxes advances the patch exactly as Step does and returns
	// the face fluxes it applied (λ-scaled: the update is the flux
	// difference directly).
	StepFluxes(p *grid.Patch, dt, dx float64) *Fluxes
}

// StepFluxes implements FluxedKernel for the upwind advection scheme.
func (a Advection3D) StepFluxes(p *grid.Patch, dt, dx float64) *Fluxes {
	checkFieldList(p, a.Name(), qFields)
	if p.NGhost < 1 {
		panic("solver.Advection3D: needs at least one ghost cell")
	}
	q := p.Field(FieldQ)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	lam := dt / dx
	fl := NewFluxes(p.Box)
	for d := 0; d < 3; d++ {
		v := a.Vel[d]
		fb := fl.faceBox[d]
		fo := 0
		for z := fb.Lo[2]; z <= fb.Hi[2]; z++ {
			for y := fb.Lo[1]; y <= fb.Hi[1]; y++ {
				off := g.Offset(geom.Index{fb.Lo[0], y, z})
				for x := fb.Lo[0]; x <= fb.Hi[0]; x++ {
					var qup float64
					if v >= 0 {
						qup = q[off-stride[d]] // face's lower cell
					} else {
						qup = q[off]
					}
					fl.f[d][fo] = v * lam * qup
					fo++
					off++
				}
			}
		}
	}
	applyFluxes(p, q, fl)
	return fl
}

// applyFluxes performs q_i -= F(i+e_d) - F(i) over the interior,
// double-buffered through the scratch arena so the update reads the
// pre-step state throughout.
func applyFluxes(p *grid.Patch, q []float64, fl *Fluxes) {
	g := p.Grown()
	b := p.Box
	sp := getScratch(len(q))
	out := *sp
	fStride := [3]int{fl.faceStride(0), fl.faceStride(1), fl.faceStride(2)}
	for z := b.Lo[2]; z <= b.Hi[2]; z++ {
		for y := b.Lo[1]; y <= b.Hi[1]; y++ {
			off := g.Offset(geom.Index{b.Lo[0], y, z})
			var fOff [3]int
			for d := 0; d < 3; d++ {
				fOff[d] = fl.faceBox[d].Offset(geom.Index{b.Lo[0], y, z})
			}
			for x := b.Lo[0]; x <= b.Hi[0]; x++ {
				var du float64
				for d := 0; d < 3; d++ {
					du -= fl.f[d][fOff[d]+fStride[d]] - fl.f[d][fOff[d]]
					fOff[d]++
				}
				out[off] = q[off] + du
				off++
			}
		}
	}
	copyInterior(q, out, g, b)
	putScratch(sp)
}

// copyInterior copies the interior rows of src into dst, both stored
// over the grown box g.
func copyInterior(dst, src []float64, g, b geom.Box) {
	n := b.Hi[0] - b.Lo[0] + 1
	for z := b.Lo[2]; z <= b.Hi[2]; z++ {
		for y := b.Lo[1]; y <= b.Hi[1]; y++ {
			off := g.Offset(geom.Index{b.Lo[0], y, z})
			copy(dst[off:off+n], src[off:off+n])
		}
	}
}

// StepFluxesReference is the original closure-based implementation of
// StepFluxes, kept verbatim as the bit-exactness baseline for tests
// and benchmarks. It never touches the reuse pools.
func (a Advection3D) StepFluxesReference(p *grid.Patch, dt, dx float64) *Fluxes {
	checkFieldList(p, a.Name(), qFields)
	if p.NGhost < 1 {
		panic("solver.Advection3D: needs at least one ghost cell")
	}
	q := p.Field(FieldQ)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	lam := dt / dx
	fl := newFluxesAlloc(p.Box)
	for d := 0; d < 3; d++ {
		v := a.Vel[d]
		fl.faceBox[d].ForEach(func(i geom.Index) {
			off := g.Offset(i)
			var qup float64
			if v >= 0 {
				qup = q[off-stride[d]] // face's lower cell
			} else {
				qup = q[off]
			}
			fl.Set(d, i, v*lam*qup)
		})
	}
	// Apply: q_i -= F(i+e_d) - F(i).
	out := make([]float64, len(q))
	copy(out, q)
	p.Box.ForEach(func(i geom.Index) {
		off := g.Offset(i)
		var du float64
		for d := 0; d < 3; d++ {
			var hi geom.Index
			hi = i
			hi[d]++
			du -= fl.At(d, hi) - fl.At(d, i)
		}
		out[off] = q[off] + du
	})
	copy(q, out)
	return fl
}
