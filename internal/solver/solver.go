// Package solver provides the numerical kernels that advance SAMR
// patches: a first-order upwind advection scheme and a Lax–Friedrichs
// scheme for hyperbolic problems (the ShockPool3D dataset solves "a
// purely hyperbolic equation"), a Gauss–Seidel/SOR relaxation for
// elliptic (Poisson) problems and a leapfrog particle integrator (the
// AMR64 dataset uses "hyperbolic (fluid) and elliptic (Poisson's)
// equations as well as a set of ordinary differential equations for
// the particle trajectories").
//
// Each kernel reports a FlopsPerCell cost; the distributed execution
// model uses it to convert cells advanced into virtual compute time,
// while the kernels themselves do the real floating-point work so the
// workload (and the in-process parallelism exercising it) is genuine.
package solver

import (
	"fmt"
	"math"

	"samrdlb/internal/grid"
)

// Kernel advances one patch by one time step.
type Kernel interface {
	// Name identifies the kernel in traces and reports.
	Name() string
	// Fields lists the field names the kernel requires on a patch.
	Fields() []string
	// FlopsPerCell is the nominal floating-point cost of advancing one
	// cell, used by the virtual-time compute model.
	FlopsPerCell() float64
	// Step advances the patch interior by dt. dx is the cell width on
	// the patch's level. Ghost cells must have been filled beforehand.
	Step(p *grid.Patch, dt, dx float64)
}

// MaxStableDt returns the largest stable time step for a kernel with
// the given maximum signal speed on cells of width dx, using the
// standard CFL condition with the given safety factor.
func MaxStableDt(maxSpeed, dx, cfl float64) float64 {
	if maxSpeed <= 0 {
		return math.Inf(1)
	}
	return cfl * dx / maxSpeed
}

// Shared field lists, returned by the kernels' Fields methods and
// passed to checkFieldList from the hot Step paths. Package-level so
// neither the method call nor the check allocates; callers must not
// mutate them.
var (
	qFields       = []string{FieldQ}
	poissonFields = []string{FieldPhi, FieldRho}
)

func checkFields(p *grid.Patch, k Kernel) {
	checkFieldList(p, k.Name(), k.Fields())
}

// checkFieldList is checkFields without boxing the kernel into an
// interface — per-step kernel code calls it with a shared field list
// so the validation costs zero allocations.
func checkFieldList(p *grid.Patch, kernelName string, fields []string) {
	for _, f := range fields {
		if !p.HasField(f) {
			panic(fmt.Sprintf("solver: patch missing field %q required by %s", f, kernelName))
		}
	}
}
