package solver

import (
	"math"
	"testing"

	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

func poissonProblem(n int) (*grid.Patch, float64) {
	p := grid.NewPatch(geom.UnitCube(n), 0, 1, FieldPhi, FieldRho)
	dx := 1.0 / float64(n)
	p.FillFunc(FieldRho, func(i geom.Index) float64 {
		x := (float64(i[0]) + 0.5) * dx
		y := (float64(i[1]) + 0.5) * dx
		z := (float64(i[2]) + 0.5) * dx
		return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
	})
	return p, dx
}

func TestMultigridConverges(t *testing.T) {
	p, dx := poissonProblem(32)
	mg := Multigrid{}
	r0 := Residual(p, dx)
	cycles, r := mg.Solve(p, dx, r0*1e-8, 40)
	if r > r0*1e-8 {
		t.Fatalf("multigrid failed to converge: residual %v after %d cycles (start %v)", r, cycles, r0)
	}
	// A plain cell-centred V(2,2) cycle with clipped boundary
	// interpolation contracts by ~0.5/cycle; 8 orders of magnitude in
	// ≤30 cycles is the honest expectation (plain GS needs thousands
	// of sweeps at this size).
	if cycles > 30 {
		t.Errorf("multigrid took %d cycles for 1e-8; expected <= 30", cycles)
	}
}

func TestMultigridBeatsGaussSeidel(t *testing.T) {
	// Equal-ish work comparison: one multigrid Step vs many GS sweeps.
	pMG, dx := poissonProblem(16)
	pGS, _ := poissonProblem(16)
	Multigrid{Cycles: 3}.Step(pMG, 0, dx)
	GaussSeidel{Sweeps: 30}.Step(pGS, 0, dx)
	if Residual(pMG, dx) >= Residual(pGS, dx) {
		t.Errorf("multigrid (%v) should beat plain GS (%v) at comparable work",
			Residual(pMG, dx), Residual(pGS, dx))
	}
}

func TestMultigridOddSizeFallsBack(t *testing.T) {
	// A 6³ patch coarsens once to 3³ (odd): the cycle must terminate
	// via the coarsest-level fallback, not recurse forever.
	p := grid.NewPatch(geom.UnitCube(6), 0, 1, FieldPhi, FieldRho)
	p.FillConstant(FieldRho, 1)
	r0 := Residual(p, 1.0/6)
	Multigrid{}.Step(p, 0, 1.0/6)
	if !(Residual(p, 1.0/6) < r0) {
		t.Error("multigrid made no progress on odd-size patch")
	}
}

func TestMultigridMetadata(t *testing.T) {
	mg := Multigrid{}
	if mg.Name() == "" || mg.FlopsPerCell() <= 0 || len(mg.Fields()) != 2 {
		t.Error("metadata wrong")
	}
	if mg.pre() != 2 || mg.post() != 2 || mg.cycles() != 2 || mg.coarsest() != 4 {
		t.Error("defaults wrong")
	}
}

func TestBurgersShockFormation(t *testing.T) {
	// A smooth sine steepens: the maximum gradient must grow.
	n := 32
	p := grid.NewPatch(geom.UnitCube(n), 0, 1, FieldQ)
	p.FillFunc(FieldQ, func(i geom.Index) float64 {
		return 0.5 + 0.4*math.Sin(2*math.Pi*float64(i[0])/float64(n))
	})
	k := Burgers3D{}
	dx := 1.0 / float64(n)
	dt := MaxStableDt(k.MaxSpeed(0.9), dx, 0.4)
	grad0 := maxGradX(p)
	for s := 0; s < 90; s++ {
		PeriodicFill(p, FieldQ)
		k.Step(p, dt, dx)
	}
	if g := maxGradX(p); g <= grad0*1.5 {
		t.Errorf("Burgers did not steepen: gradient %v -> %v", grad0, g)
	}
}

func maxGradX(p *grid.Patch) float64 {
	var worst float64
	p.Box.ForEach(func(i geom.Index) {
		j := i
		j[0]++
		if !p.Box.Contains(j) {
			return
		}
		g := math.Abs(p.At(FieldQ, j) - p.At(FieldQ, i))
		if g > worst {
			worst = g
		}
	})
	return worst
}

func TestBurgersConservesMassPeriodic(t *testing.T) {
	n := 16
	p := grid.NewPatch(geom.UnitCube(n), 0, 1, FieldQ)
	p.FillFunc(FieldQ, func(i geom.Index) float64 {
		return 0.3 + 0.2*math.Sin(2*math.Pi*float64(i[1])/float64(n))
	})
	k := Burgers3D{}
	dx := 1.0 / float64(n)
	dt := MaxStableDt(k.MaxSpeed(0.5), dx, 0.4)
	before := p.Sum(FieldQ)
	for s := 0; s < 20; s++ {
		PeriodicFill(p, FieldQ)
		k.Step(p, dt, dx)
	}
	if after := p.Sum(FieldQ); math.Abs(after-before) > 1e-9*math.Abs(before) {
		t.Errorf("Burgers mass not conserved: %v -> %v", before, after)
	}
}

func TestBurgersEntropyNoNewExtrema(t *testing.T) {
	// Godunov is monotone: max must not grow, min must not fall.
	n := 16
	p := grid.NewPatch(geom.UnitCube(n), 0, 1, FieldQ)
	p.FillFunc(FieldQ, func(i geom.Index) float64 {
		if i[0] < n/2 {
			return 1
		}
		return -0.5
	})
	k := Burgers3D{}
	dx := 1.0 / float64(n)
	dt := MaxStableDt(k.MaxSpeed(1), dx, 0.4)
	for s := 0; s < 20; s++ {
		PeriodicFill(p, FieldQ)
		k.Step(p, dt, dx)
		lo, hi := math.Inf(1), math.Inf(-1)
		p.Box.ForEach(func(i geom.Index) {
			v := p.At(FieldQ, i)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		})
		if hi > 1+1e-12 || lo < -0.5-1e-12 {
			t.Fatalf("new extrema at step %d: [%v, %v]", s, lo, hi)
		}
	}
}

func TestGodunovFluxCases(t *testing.T) {
	cases := []struct{ ql, qr, want float64 }{
		{1, 1, 0.5},     // uniform right-moving
		{-1, -1, 0.5},   // uniform left-moving
		{1, -1, 0.5},    // shock with zero speed: max of both
		{-1, 1, 0},      // transonic rarefaction: sonic point flux 0
		{2, 1, 2},       // right-moving shock: f(ql)
		{0.5, 2, 0.125}, // right-moving rarefaction: f(ql)
	}
	for _, c := range cases {
		if got := godunovFlux(c.ql, c.qr); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("godunovFlux(%v,%v) = %v, want %v", c.ql, c.qr, got, c.want)
		}
	}
}

func TestBurgersStepFluxesMatchesStep(t *testing.T) {
	mk := func() *grid.Patch {
		p := grid.NewPatch(geom.UnitCube(8), 0, 1, FieldQ)
		p.FillFunc(FieldQ, func(i geom.Index) float64 {
			return math.Sin(float64(i[0]+2*i[1])) * 0.7
		})
		PeriodicFill(p, FieldQ)
		return p
	}
	a, b := mk(), mk()
	k := Burgers3D{}
	k.Step(a, 0.01, 0.125)
	k.StepFluxes(b, 0.01, 0.125)
	for i, v := range a.Field(FieldQ) {
		if b.Field(FieldQ)[i] != v {
			t.Fatal("StepFluxes diverges from Step")
		}
	}
}
