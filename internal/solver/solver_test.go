package solver

import (
	"math"
	"sync/atomic"
	"testing"

	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

func newQPatch(n, ng int) *grid.Patch {
	return grid.NewPatch(geom.UnitCube(n), 0, ng, FieldQ)
}

func TestAdvectionConservesMassPeriodic(t *testing.T) {
	p := newQPatch(12, 1)
	p.FillFunc(FieldQ, func(i geom.Index) float64 {
		return math.Sin(2*math.Pi*float64(i[0])/12) + 2
	})
	k := Advection3D{Vel: [3]float64{1, 0.5, -0.25}}
	dx := 1.0 / 12
	dt := MaxStableDt(k.MaxSpeed(), dx, 0.5)
	before := p.Sum(FieldQ)
	for s := 0; s < 20; s++ {
		PeriodicFill(p, FieldQ)
		k.Step(p, dt, dx)
	}
	after := p.Sum(FieldQ)
	if math.Abs(after-before) > 1e-9*math.Abs(before) {
		t.Errorf("mass not conserved: %v -> %v", before, after)
	}
}

func TestAdvectionTranslatesProfile(t *testing.T) {
	// Advect a profile exactly one cell per step (CFL=1 upwind is
	// exact for 1-D motion): after n steps the profile shifts n cells.
	n := 8
	p := newQPatch(n, 1)
	p.FillFunc(FieldQ, func(i geom.Index) float64 {
		if i[0] == 2 {
			return 1
		}
		return 0
	})
	k := Advection3D{Vel: [3]float64{1, 0, 0}}
	dx := 1.0
	dt := 1.0 // CFL exactly 1
	PeriodicFill(p, FieldQ)
	k.Step(p, dt, dx)
	if got := p.At(FieldQ, geom.Index{3, 3, 3}); got != 1 {
		t.Errorf("profile did not shift: q(3)= %v", got)
	}
	if got := p.At(FieldQ, geom.Index{2, 3, 3}); got != 0 {
		t.Errorf("old position not cleared: q(2)= %v", got)
	}
}

func TestAdvectionNegativeVelocityUpwinding(t *testing.T) {
	n := 8
	p := newQPatch(n, 1)
	p.FillFunc(FieldQ, func(i geom.Index) float64 {
		if i[1] == 5 {
			return 1
		}
		return 0
	})
	k := Advection3D{Vel: [3]float64{0, -1, 0}}
	PeriodicFill(p, FieldQ)
	k.Step(p, 1.0, 1.0)
	if got := p.At(FieldQ, geom.Index{3, 4, 3}); got != 1 {
		t.Errorf("profile should move to y=4, got q= %v", got)
	}
}

func TestAdvectionStability(t *testing.T) {
	// Under the CFL limit the max must not grow (monotone scheme).
	p := newQPatch(10, 1)
	p.FillFunc(FieldQ, func(i geom.Index) float64 {
		if i[0] == 5 && i[1] == 5 && i[2] == 5 {
			return 1
		}
		return 0
	})
	k := Advection3D{Vel: [3]float64{1, 1, 1}}
	dx := 0.1
	dt := MaxStableDt(k.MaxSpeed(), dx, 0.9)
	for s := 0; s < 50; s++ {
		PeriodicFill(p, FieldQ)
		k.Step(p, dt, dx)
		if m := p.MaxAbs(FieldQ); m > 1.0+1e-12 {
			t.Fatalf("monotone scheme overshot at step %d: max %v", s, m)
		}
	}
}

func TestLaxFriedrichsConservesMass(t *testing.T) {
	p := newQPatch(10, 1)
	p.FillFunc(FieldQ, func(i geom.Index) float64 { return float64(i[0]%3) + 1 })
	k := LaxFriedrichs3D{Vel: [3]float64{0.7, -0.3, 0.1}}
	dx := 0.1
	dt := MaxStableDt(k.MaxSpeed(), dx, 0.4)
	before := p.Sum(FieldQ)
	for s := 0; s < 10; s++ {
		PeriodicFill(p, FieldQ)
		k.Step(p, dt, dx)
	}
	if after := p.Sum(FieldQ); math.Abs(after-before) > 1e-9*math.Abs(before) {
		t.Errorf("LF mass not conserved: %v -> %v", before, after)
	}
}

func TestLaxFriedrichsConstantPreserved(t *testing.T) {
	p := newQPatch(6, 1)
	p.FillConstant(FieldQ, 3.5)
	k := LaxFriedrichs3D{Vel: [3]float64{1, 1, 1}}
	PeriodicFill(p, FieldQ)
	k.Step(p, 0.01, 0.1)
	p.Box.ForEach(func(i geom.Index) {
		if math.Abs(p.At(FieldQ, i)-3.5) > 1e-13 {
			t.Fatalf("constant state not preserved at %v: %v", i, p.At(FieldQ, i))
		}
	})
}

func TestMaxStableDt(t *testing.T) {
	if got := MaxStableDt(2, 0.1, 0.5); math.Abs(got-0.025) > 1e-15 {
		t.Errorf("MaxStableDt = %v", got)
	}
	if !math.IsInf(MaxStableDt(0, 0.1, 0.5), 1) {
		t.Error("zero speed should give infinite dt")
	}
}

func TestGaussSeidelReducesResidual(t *testing.T) {
	p := grid.NewPatch(geom.UnitCube(8), 0, 1, FieldPhi, FieldRho)
	p.FillFunc(FieldRho, func(i geom.Index) float64 {
		if i == (geom.Index{4, 4, 4}) {
			return 1
		}
		return 0
	})
	dx := 1.0 / 8
	r0 := Residual(p, dx)
	gs := GaussSeidel{Sweeps: 10}
	gs.Step(p, 0, dx)
	r1 := Residual(p, dx)
	gs.Step(p, 0, dx)
	r2 := Residual(p, dx)
	if !(r1 < r0 && r2 < r1) {
		t.Errorf("residual not decreasing: %v %v %v", r0, r1, r2)
	}
}

func TestGaussSeidelConvergesToSolution(t *testing.T) {
	// Zero source with zero Dirichlet boundary: φ must relax to 0.
	p := grid.NewPatch(geom.UnitCube(6), 0, 1, FieldPhi, FieldRho)
	p.FillFunc(FieldPhi, func(i geom.Index) float64 {
		if p.Box.Contains(i) {
			return 1 // interior initial guess
		}
		return 0 // boundary condition in ghosts
	})
	gs := GaussSeidel{Sweeps: 200, Omega: 1.5}
	gs.Step(p, 0, 1.0/6)
	if m := p.MaxAbs(FieldPhi); m > 1e-6 {
		t.Errorf("phi did not relax to zero: max %v", m)
	}
}

func TestGaussSeidelDefaults(t *testing.T) {
	gs := GaussSeidel{}
	if gs.sweeps() != 4 || gs.omega() != 1.0 {
		t.Errorf("defaults wrong: %d %v", gs.sweeps(), gs.omega())
	}
	if gs.FlopsPerCell() != 40 {
		t.Errorf("FlopsPerCell = %v", gs.FlopsPerCell())
	}
}

func TestKernelFieldCheckPanics(t *testing.T) {
	p := grid.NewPatch(geom.UnitCube(4), 0, 1, "other")
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing field")
		}
	}()
	Advection3D{}.Step(p, 0.1, 0.1)
}

func TestParticleLeapfrogBoundedOrbit(t *testing.T) {
	ps := &ParticleSet{
		Particles: []Particle{{Pos: [3]float64{0.6, 0.5, 0.5}, Vel: [3]float64{0, 0.3, 0}, Mass: 1}},
		Centers:   [][3]float64{{0.5, 0.5, 0.5}},
		G:         0.01,
		Domain:    1,
	}
	for s := 0; s < 2000; s++ {
		ps.Step(0.01)
		p := ps.Particles[0].Pos
		for d := 0; d < 3; d++ {
			if p[d] < 0 || p[d] >= 1 {
				t.Fatalf("particle escaped periodic domain: %v", p)
			}
		}
	}
	if e := ps.KineticEnergy(); math.IsNaN(e) || math.IsInf(e, 0) || e > 100 {
		t.Errorf("kinetic energy blew up: %v", e)
	}
}

func TestParticleFreeStreaming(t *testing.T) {
	ps := &ParticleSet{
		Particles: []Particle{{Pos: [3]float64{0.1, 0.1, 0.1}, Vel: [3]float64{0.1, 0, 0}, Mass: 1}},
		Domain:    1,
	}
	for s := 0; s < 95; s++ {
		ps.Step(0.1)
	}
	// No force: x = 0.1 + 95*0.1*0.1 = 1.05 -> wraps to 0.05.
	if got := ps.Particles[0].Pos[0]; math.Abs(got-0.05) > 1e-12 {
		t.Errorf("free streaming pos = %v", got)
	}
}

func TestParticleCountInRegion(t *testing.T) {
	ps := &ParticleSet{Particles: []Particle{
		{Pos: [3]float64{0.1, 0.1, 0.1}},
		{Pos: [3]float64{0.6, 0.6, 0.6}},
		{Pos: [3]float64{0.4, 0.4, 0.4}},
	}}
	n := ps.CountInRegion([3]float64{0, 0, 0}, [3]float64{0.5, 0.5, 0.5})
	if n != 2 {
		t.Errorf("CountInRegion = %d", n)
	}
}

func TestPoolForEachCoversAll(t *testing.T) {
	p := NewPool(4)
	var hits [100]int32
	p.ForEach(100, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestPoolSingleWorkerAndEmpty(t *testing.T) {
	p := NewPool(1)
	sum := 0
	p.ForEach(10, func(i int) { sum += i }) // sequential path, no race
	if sum != 45 {
		t.Errorf("sum = %d", sum)
	}
	p.ForEach(0, func(int) { t.Error("must not be called") })
	if NewPool(0).Workers() < 1 {
		t.Error("default pool must have at least one worker")
	}
}

func TestKernelMetadata(t *testing.T) {
	ks := []Kernel{Advection3D{}, LaxFriedrichs3D{}, GaussSeidel{}}
	for _, k := range ks {
		if k.Name() == "" || k.FlopsPerCell() <= 0 || len(k.Fields()) == 0 {
			t.Errorf("kernel %T metadata incomplete", k)
		}
	}
}

func TestAdvectionFirstOrderConvergence(t *testing.T) {
	// Advect a smooth profile one revolution on periodic grids of two
	// resolutions: the L1 error of the first-order upwind scheme must
	// shrink by roughly 2x when dx halves.
	errAt := func(n int) float64 {
		p := grid.NewPatch(geom.UnitCube(n), 0, 1, FieldQ)
		exact := func(x float64) float64 { return math.Sin(2 * math.Pi * x) }
		p.FillFunc(FieldQ, func(i geom.Index) float64 {
			return exact((float64(i[0]) + 0.5) / float64(n))
		})
		k := Advection3D{Vel: [3]float64{1, 0, 0}}
		dx := 1.0 / float64(n)
		steps := 2 * n // CFL 0.5, half a revolution
		dt := 0.5 * dx
		for s := 0; s < steps; s++ {
			PeriodicFill(p, FieldQ)
			k.Step(p, dt, dx)
		}
		// After time = steps*dt = 1.0*...: travelled distance = steps*dt*v = n*dx = 1 -> full revolution.
		var err float64
		p.Box.ForEach(func(i geom.Index) {
			x := (float64(i[0]) + 0.5) / float64(n)
			err += math.Abs(p.At(FieldQ, i) - exact(x))
		})
		return err / float64(p.Box.NumCells())
	}
	e1, e2 := errAt(16), errAt(32)
	ratio := e1 / e2
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("first-order convergence ratio = %v (errors %v, %v), want ~2", ratio, e1, e2)
	}
}

func TestMultigridSolutionMatchesAnalytic(t *testing.T) {
	// ∇²φ = ρ with ρ chosen so φ = Π sin(πx_d) is the exact solution
	// (up to discretisation error): the solve must approach it at
	// second order in dx.
	solveErr := func(n int) float64 {
		p := grid.NewPatch(geom.UnitCube(n), 0, 1, FieldPhi, FieldRho)
		dx := 1.0 / float64(n)
		exact := func(i geom.Index) float64 {
			v := 1.0
			for d := 0; d < 3; d++ {
				v *= math.Sin(math.Pi * (float64(i[d]) + 0.5) * dx)
			}
			return v
		}
		p.FillFunc(FieldRho, func(i geom.Index) float64 {
			return -3 * math.Pi * math.Pi * exact(i)
		})
		// Dirichlet ghosts: the exact solution evaluated outside.
		g := p.Grown()
		g.ForEach(func(i geom.Index) {
			if !p.Box.Contains(i) {
				p.Set(FieldPhi, i, exact(i))
			}
		})
		Multigrid{}.Solve(p, dx, 1e-10, 60)
		var worst float64
		p.Box.ForEach(func(i geom.Index) {
			e := math.Abs(p.At(FieldPhi, i) - exact(i))
			if e > worst {
				worst = e
			}
		})
		return worst
	}
	e1, e2 := solveErr(8), solveErr(16)
	ratio := e1 / e2
	if ratio < 3 || ratio > 6 {
		t.Errorf("second-order convergence ratio = %v (errors %v, %v), want ~4", ratio, e1, e2)
	}
}
