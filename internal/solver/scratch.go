package solver

import "sync"

// Kernel scratch arena: the hyperbolic kernels need one full-patch
// work array per Step, and Step runs for every grid on every level
// substep. Allocating it with make() put ~one large garbage slice per
// grid-step on the heap; the arena recycles them across steps and
// across goroutines (the pool advances many grids concurrently, so
// the arena must be concurrency-safe — sync.Pool is).
//
// Ownership rule: a scratch slice is owned by exactly one kernel
// invocation between getScratch and putScratch; it is never retained
// past the Step call that borrowed it. Contents are NOT zeroed on
// reuse — callers must write every element they later read.
var scratchPool = sync.Pool{New: func() any { return new([]float64) }}

// getScratch borrows a slice of length n with arbitrary contents.
// Return it with putScratch when the step is done.
func getScratch(n int) *[]float64 {
	sp := scratchPool.Get().(*[]float64)
	if cap(*sp) < n {
		*sp = make([]float64, n)
	}
	*sp = (*sp)[:n]
	return sp
}

// putScratch returns a borrowed slice to the arena.
func putScratch(sp *[]float64) { scratchPool.Put(sp) }
