package solver

import (
	"math"

	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

// FieldQ is the advected/conserved scalar field name used by the
// hyperbolic kernels.
const FieldQ = "q"

// Advection3D is a first-order upwind finite-volume scheme for the
// linear advection equation q_t + v·∇q = 0. It is the cheap, robust
// hyperbolic kernel used by the ShockPool3D workload.
type Advection3D struct {
	// Vel is the constant advection velocity.
	Vel [3]float64
}

// Name implements Kernel.
func (a Advection3D) Name() string { return "advection3d-upwind" }

// Fields implements Kernel.
func (a Advection3D) Fields() []string { return qFields }

// FlopsPerCell implements Kernel: 3 dims × (1 upwind select + 2 mul +
// 2 add) ≈ 15, plus the update ≈ 18 flops.
func (a Advection3D) FlopsPerCell() float64 { return 18 }

// MaxSpeed returns the maximum signal speed, for CFL computation.
func (a Advection3D) MaxSpeed() float64 {
	return math.Abs(a.Vel[0]) + math.Abs(a.Vel[1]) + math.Abs(a.Vel[2])
}

// Step implements Kernel. Requires NGhost >= 1. The sweep is written
// as explicit row loops over borrowed scratch (no per-step allocation,
// no per-cell closure); it is bit-identical to StepReference.
func (a Advection3D) Step(p *grid.Patch, dt, dx float64) {
	checkFieldList(p, a.Name(), qFields)
	if p.NGhost < 1 {
		panic("solver.Advection3D: needs at least one ghost cell")
	}
	q := p.Field(FieldQ)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	lam := dt / dx
	b := p.Box
	sp := getScratch(len(q))
	out := *sp
	for z := b.Lo[2]; z <= b.Hi[2]; z++ {
		for y := b.Lo[1]; y <= b.Hi[1]; y++ {
			off := g.Offset(geom.Index{b.Lo[0], y, z})
			for x := b.Lo[0]; x <= b.Hi[0]; x++ {
				du := 0.0
				for d := 0; d < 3; d++ {
					v := a.Vel[d]
					if v >= 0 {
						du -= v * lam * (q[off] - q[off-stride[d]])
					} else {
						du -= v * lam * (q[off+stride[d]] - q[off])
					}
				}
				out[off] = q[off] + du
				off++
			}
		}
	}
	copyInterior(q, out, g, b)
	putScratch(sp)
}

// StepReference is the original closure-based Step, kept verbatim as
// the bit-exactness baseline for tests and benchmarks.
func (a Advection3D) StepReference(p *grid.Patch, dt, dx float64) {
	checkFieldList(p, a.Name(), qFields)
	if p.NGhost < 1 {
		panic("solver.Advection3D: needs at least one ghost cell")
	}
	q := p.Field(FieldQ)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	out := make([]float64, len(q))
	copy(out, q)
	lam := dt / dx
	p.Box.ForEach(func(i geom.Index) {
		off := g.Offset(i)
		du := 0.0
		for d := 0; d < 3; d++ {
			v := a.Vel[d]
			if v >= 0 {
				du -= v * lam * (q[off] - q[off-stride[d]])
			} else {
				du -= v * lam * (q[off+stride[d]] - q[off])
			}
		}
		out[off] = q[off] + du
	})
	copy(q, out)
}

// LaxFriedrichs3D advances the advection equation with the (more
// diffusive, unconditionally symmetric) Lax–Friedrichs scheme. It
// exists both as an alternative hyperbolic kernel and as a reference
// for the upwind scheme in tests.
type LaxFriedrichs3D struct {
	Vel [3]float64
}

// Name implements Kernel.
func (l LaxFriedrichs3D) Name() string { return "lax-friedrichs3d" }

// Fields implements Kernel.
func (l LaxFriedrichs3D) Fields() []string { return qFields }

// FlopsPerCell implements Kernel.
func (l LaxFriedrichs3D) FlopsPerCell() float64 { return 24 }

// MaxSpeed returns the maximum signal speed, for CFL computation.
func (l LaxFriedrichs3D) MaxSpeed() float64 {
	return math.Abs(l.Vel[0]) + math.Abs(l.Vel[1]) + math.Abs(l.Vel[2])
}

// Step implements Kernel. Requires NGhost >= 1. Explicit row loops
// over borrowed scratch, bit-identical to StepReference.
func (l LaxFriedrichs3D) Step(p *grid.Patch, dt, dx float64) {
	checkFieldList(p, l.Name(), qFields)
	if p.NGhost < 1 {
		panic("solver.LaxFriedrichs3D: needs at least one ghost cell")
	}
	q := p.Field(FieldQ)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	lam := dt / dx
	b := p.Box
	sp := getScratch(len(q))
	out := *sp
	for z := b.Lo[2]; z <= b.Hi[2]; z++ {
		for y := b.Lo[1]; y <= b.Hi[1]; y++ {
			off := g.Offset(geom.Index{b.Lo[0], y, z})
			for x := b.Lo[0]; x <= b.Hi[0]; x++ {
				avg := 0.0
				flux := 0.0
				for d := 0; d < 3; d++ {
					qm, qp := q[off-stride[d]], q[off+stride[d]]
					avg += qm + qp
					flux += l.Vel[d] * lam * (qp - qm)
				}
				out[off] = avg/6.0 - 0.5*flux
				off++
			}
		}
	}
	copyInterior(q, out, g, b)
	putScratch(sp)
}

// StepReference is the original closure-based Step, kept verbatim as
// the bit-exactness baseline for tests and benchmarks.
func (l LaxFriedrichs3D) StepReference(p *grid.Patch, dt, dx float64) {
	checkFieldList(p, l.Name(), qFields)
	if p.NGhost < 1 {
		panic("solver.LaxFriedrichs3D: needs at least one ghost cell")
	}
	q := p.Field(FieldQ)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	out := make([]float64, len(q))
	copy(out, q)
	lam := dt / dx
	p.Box.ForEach(func(i geom.Index) {
		off := g.Offset(i)
		avg := 0.0
		flux := 0.0
		for d := 0; d < 3; d++ {
			qm, qp := q[off-stride[d]], q[off+stride[d]]
			avg += qm + qp
			flux += l.Vel[d] * lam * (qp - qm)
		}
		out[off] = avg/6.0 - 0.5*flux
	})
	copy(q, out)
}

// PeriodicFill fills the patch's ghost cells from its own interior
// assuming the patch covers the whole periodic domain. It is a test
// and single-grid convenience; multi-grid ghost exchange is handled by
// the AMR machinery.
func PeriodicFill(p *grid.Patch, name string) {
	f := p.Field(name)
	g := p.Grown()
	sh := p.Box.Shape()
	g.ForEach(func(i geom.Index) {
		if p.Box.Contains(i) {
			return
		}
		var src geom.Index
		for d := 0; d < 3; d++ {
			v := i[d]
			for v < p.Box.Lo[d] {
				v += sh[d]
			}
			for v > p.Box.Hi[d] {
				v -= sh[d]
			}
			src[d] = v
		}
		f[g.Offset(i)] = f[g.Offset(src)]
	})
}
