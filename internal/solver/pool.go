package solver

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs patch kernels in parallel across host cores. The
// distributed execution model charges virtual time per simulated
// processor, but the arithmetic itself is genuinely parallel Go: each
// simulated processor's grids are advanced by worker goroutines.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker count; n <= 0 selects
// GOMAXPROCS workers.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// ForEach invokes fn(i) for i in [0,n) across the pool's workers and
// waits for completion. fn must be safe to call concurrently for
// distinct i.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Work-stealing by atomic counter: no per-call channel fill, no
	// per-index send/receive — this runs on every level step.
	var wg sync.WaitGroup
	var next atomic.Int64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
