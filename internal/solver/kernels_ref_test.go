package solver

import (
	"math/rand"
	"testing"

	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

// The hot kernels were rewritten from per-cell closures to explicit
// row loops over pooled scratch. These tests pin every rewritten path
// against its retained reference implementation, bit for bit.

func randKernelPatch(t *testing.T, fields ...string) *grid.Patch {
	t.Helper()
	p := grid.NewPatch(geom.UnitCube(12), 0, 2, fields...)
	rng := rand.New(rand.NewSource(41))
	for _, f := range fields {
		p.FillFunc(f, func(geom.Index) float64 { return rng.Float64()*2 - 1 })
	}
	return p
}

func assertFieldsEqual(t *testing.T, want, got *grid.Patch, context string) {
	t.Helper()
	for _, f := range want.FieldNames() {
		wf, gf := want.Field(f), got.Field(f)
		for k := range wf {
			if wf[k] != gf[k] {
				t.Fatalf("%s: field %q differs at flat index %d: want %v, got %v",
					context, f, k, wf[k], gf[k])
			}
		}
	}
}

func TestAdvectionStepMatchesReference(t *testing.T) {
	k := Advection3D{Vel: [3]float64{1, -0.5, 0.25}}
	a := randKernelPatch(t, FieldQ)
	b := a.Clone()
	for i := 0; i < 3; i++ {
		k.Step(a, 0.05, 0.1)
		k.StepReference(b, 0.05, 0.1)
	}
	assertFieldsEqual(t, b, a, "Advection3D.Step")
}

func TestLaxFriedrichsStepMatchesReference(t *testing.T) {
	k := LaxFriedrichs3D{Vel: [3]float64{-0.75, 0.5, 1}}
	a := randKernelPatch(t, FieldQ)
	b := a.Clone()
	for i := 0; i < 3; i++ {
		k.Step(a, 0.05, 0.1)
		k.StepReference(b, 0.05, 0.1)
	}
	assertFieldsEqual(t, b, a, "LaxFriedrichs3D.Step")
}

func TestBurgersStepMatchesReference(t *testing.T) {
	k := Burgers3D{}
	a := randKernelPatch(t, FieldQ)
	b := a.Clone()
	for i := 0; i < 3; i++ {
		k.StepFluxes(a, 0.02, 0.1).Release()
		k.StepReference(b, 0.02, 0.1)
	}
	assertFieldsEqual(t, b, a, "Burgers3D.StepFluxes")
}

func TestAdvectionStepFluxesMatchesReference(t *testing.T) {
	k := Advection3D{Vel: [3]float64{0.3, -1, 0.6}}
	a := randKernelPatch(t, FieldQ)
	b := a.Clone()
	fa := k.StepFluxes(a, 0.04, 0.1)
	fb := k.StepFluxesReference(b, 0.04, 0.1)
	assertFieldsEqual(t, b, a, "Advection3D.StepFluxes state")
	for d := 0; d < 3; d++ {
		fa.FaceBox(d).ForEach(func(i geom.Index) {
			if fa.At(d, i) != fb.At(d, i) {
				t.Fatalf("flux dim %d at %v: pooled %v, reference %v", d, i, fa.At(d, i), fb.At(d, i))
			}
		})
	}
	fa.Release()
}

func TestBurgersStepFluxesMatchesReferenceFluxes(t *testing.T) {
	k := Burgers3D{}
	a := randKernelPatch(t, FieldQ)
	b := a.Clone()
	fa := k.StepFluxes(a, 0.02, 0.1)
	fb := k.StepReference(b, 0.02, 0.1)
	assertFieldsEqual(t, b, a, "Burgers3D.StepFluxes state")
	for d := 0; d < 3; d++ {
		fa.FaceBox(d).ForEach(func(i geom.Index) {
			if fa.At(d, i) != fb.At(d, i) {
				t.Fatalf("flux dim %d at %v: pooled %v, reference %v", d, i, fa.At(d, i), fb.At(d, i))
			}
		})
	}
	fa.Release()
}

// TestFluxesReuseZeroed: a Fluxes recycled through Release/NewFluxes
// must come back zero-filled — kernels accumulate into it and depend
// on the documented zeroed contract.
func TestFluxesReuseZeroed(t *testing.T) {
	box := geom.UnitCube(6)
	fl := NewFluxes(box)
	for d := 0; d < 3; d++ {
		fl.FaceBox(d).ForEach(func(i geom.Index) { fl.Set(d, i, 3.5) })
	}
	fl.Release()
	// Drain the pool until we either see a recycled buffer or give up;
	// sync.Pool gives no guarantees, so only recycled ones are checked.
	for tries := 0; tries < 8; tries++ {
		got := NewFluxes(box)
		for d := 0; d < 3; d++ {
			got.FaceBox(d).ForEach(func(i geom.Index) {
				if got.At(d, i) != 0 {
					t.Fatalf("recycled Fluxes not zeroed: dim %d at %v = %v", d, i, got.At(d, i))
				}
			})
		}
		got.Release()
	}
}

// refGaussSeidel is the closure-based original red-black sweep, kept
// here as the parity oracle for the strided rewrite.
func refGaussSeidel(gs GaussSeidel, p *grid.Patch, dx float64) {
	phi := p.Field(FieldPhi)
	rho := p.Field(FieldRho)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	h2 := dx * dx
	w := gs.omega()
	for sweep := 0; sweep < gs.sweeps(); sweep++ {
		for color := 0; color < 2; color++ {
			p.Box.ForEach(func(i geom.Index) {
				if (i[0]+i[1]+i[2])&1 != color {
					return
				}
				off := g.Offset(i)
				nb := phi[off-stride[0]] + phi[off+stride[0]] +
					phi[off-stride[1]] + phi[off+stride[1]] +
					phi[off-stride[2]] + phi[off+stride[2]]
				target := (nb - h2*rho[off]) / 6.0
				phi[off] += w * (target - phi[off])
			})
		}
	}
}

func TestGaussSeidelMatchesReference(t *testing.T) {
	for _, lo := range []geom.Index{{0, 0, 0}, {-3, 1, -2}} {
		gs := GaussSeidel{Sweeps: 3, Omega: 1.2}
		box := geom.Box{Lo: lo, Hi: lo.Add(geom.Index{8, 9, 10})}
		a := grid.NewPatch(box, 0, 1, FieldPhi, FieldRho)
		rng := rand.New(rand.NewSource(17))
		for _, f := range []string{FieldPhi, FieldRho} {
			a.FillFunc(f, func(geom.Index) float64 { return rng.Float64() })
		}
		b := a.Clone()
		gs.Step(a, 0, 0.1)
		refGaussSeidel(gs, b, 0.1)
		assertFieldsEqual(t, b, a, "GaussSeidel.Step")
	}
}
