package solver

import (
	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

// Burgers3D advances the inviscid Burgers equation
// q_t + Σ_d ∂_d (q²/2) = 0 with the Godunov (exact Riemann) flux,
// dimension by dimension. Unlike linear advection it steepens smooth
// profiles into genuine shocks — the "purely hyperbolic equation"
// behaviour ShockPool3D models, with real nonlinear dynamics.
type Burgers3D struct{}

// Name implements Kernel.
func (Burgers3D) Name() string { return "burgers3d-godunov" }

// Fields implements Kernel.
func (Burgers3D) Fields() []string { return qFields }

// FlopsPerCell implements Kernel: 3 dims × (2 flux evaluations with
// min/max logic ≈ 8 flops) + update.
func (Burgers3D) FlopsPerCell() float64 { return 30 }

// MaxSpeed returns the largest signal speed for the given field
// magnitude (|q| for Burgers).
func (Burgers3D) MaxSpeed(maxAbsQ float64) float64 { return 3 * maxAbsQ }

// godunovFlux returns the Godunov flux for f(q)=q²/2 between left and
// right states: the exact solution of the scalar Riemann problem.
func godunovFlux(ql, qr float64) float64 {
	// Standard form: max over f of max(ql,0) and min(qr,0).
	a := ql
	if a < 0 {
		a = 0
	}
	b := qr
	if b > 0 {
		b = 0
	}
	fa := a * a / 2
	fb := b * b / 2
	if fa > fb {
		return fa
	}
	return fb
}

// Step implements Kernel. Requires NGhost >= 1. Callers that do not
// need the fluxes go through here so the Fluxes object returns to the
// reuse pool immediately.
func (k Burgers3D) Step(p *grid.Patch, dt, dx float64) {
	k.StepFluxes(p, dt, dx).Release()
}

// StepFluxes implements FluxedKernel. Explicit row loops over pooled
// fluxes and borrowed scratch, bit-identical to StepReference.
func (k Burgers3D) StepFluxes(p *grid.Patch, dt, dx float64) *Fluxes {
	checkFieldList(p, k.Name(), qFields)
	if p.NGhost < 1 {
		panic("solver.Burgers3D: needs at least one ghost cell")
	}
	q := p.Field(FieldQ)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	lam := dt / dx
	fl := NewFluxes(p.Box)
	for d := 0; d < 3; d++ {
		fb := fl.faceBox[d]
		fo := 0
		for z := fb.Lo[2]; z <= fb.Hi[2]; z++ {
			for y := fb.Lo[1]; y <= fb.Hi[1]; y++ {
				off := g.Offset(geom.Index{fb.Lo[0], y, z})
				for x := fb.Lo[0]; x <= fb.Hi[0]; x++ {
					fl.f[d][fo] = lam * godunovFlux(q[off-stride[d]], q[off])
					fo++
					off++
				}
			}
		}
	}
	applyFluxes(p, q, fl)
	return fl
}

// StepReference is the original closure-based step, kept verbatim as
// the bit-exactness baseline for tests and benchmarks. It returns the
// (heap-allocated, never pooled) fluxes it applied.
func (k Burgers3D) StepReference(p *grid.Patch, dt, dx float64) *Fluxes {
	checkFieldList(p, k.Name(), qFields)
	if p.NGhost < 1 {
		panic("solver.Burgers3D: needs at least one ghost cell")
	}
	q := p.Field(FieldQ)
	g := p.Grown()
	s := g.Shape()
	stride := [3]int{1, s[0], s[0] * s[1]}
	lam := dt / dx
	fl := newFluxesAlloc(p.Box)
	for d := 0; d < 3; d++ {
		fl.FaceBox(d).ForEach(func(i geom.Index) {
			off := g.Offset(i)
			fl.Set(d, i, lam*godunovFlux(q[off-stride[d]], q[off]))
		})
	}
	out := make([]float64, len(q))
	copy(out, q)
	p.Box.ForEach(func(i geom.Index) {
		off := g.Offset(i)
		var du float64
		for d := 0; d < 3; d++ {
			hi := i
			hi[d]++
			du -= fl.At(d, hi) - fl.At(d, i)
		}
		out[off] = q[off] + du
	})
	copy(q, out)
	return fl
}
