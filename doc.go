// Package samrdlb reproduces "Dynamic Load Balancing of SAMR
// Applications on Distributed Systems" (Lan, Taylor, Bryan; SC 2001):
// a structured-AMR framework, a modelled distributed system with
// heterogeneous processors and shared dynamic networks, the paper's
// two DLB schemes, and a benchmark harness regenerating every figure
// of its evaluation.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); runnable entry points are under cmd/ and
// examples/. The benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=Fig -benchmem
package samrdlb
