module samrdlb

go 1.22
